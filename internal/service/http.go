package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/savat"
)

// API wire shapes. The campaign spec itself is savat.CampaignSpec; the
// progress events are engine.ProgressEvent — both pinned elsewhere.

// SubmitRequest is the body of POST /v1/campaigns.
type SubmitRequest struct {
	// Spec is the campaign to run (required).
	Spec json.RawMessage `json:"spec"`
	// Tenant and Priority feed the scheduler (see SubmitOptions).
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
}

// listResponse is the body of GET /v1/campaigns.
type listResponse struct {
	Campaigns []Job `json:"campaigns"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler serves the campaign API:
//
//	POST   /v1/campaigns              submit a campaign spec → job
//	GET    /v1/campaigns              list jobs
//	GET    /v1/campaigns/{id}         job status, stats, health
//	GET    /v1/campaigns/{id}/events  progress stream (NDJSON; SSE with
//	                                  Accept: text/event-stream)
//	GET    /v1/campaigns/{id}/result  completed job's matrix
//	DELETE /v1/campaigns/{id}         cancel (checkpointed for resume)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: request body: %w", err))
		return
	}
	if len(req.Spec) == 0 {
		writeError(w, http.StatusBadRequest, errors.New(`service: request body needs a "spec"`))
		return
	}
	spec, err := parseSpec(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	jb, err := s.Submit(spec, SubmitOptions{Tenant: req.Tenant, Priority: req.Priority})
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, jb)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, listResponse{Campaigns: s.List()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	jb, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, jb)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.Result(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	jb, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, jb)
}

// handleEvents streams the job's progress events: history first, then
// live, ending when the job reaches a terminal state. Plain requests
// get NDJSON (one engine.ProgressEvent per line); Accept:
// text/event-stream gets the same objects as SSE data frames.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	events, stop, err := s.Subscribe(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	defer stop()

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	enc := json.NewEncoder(w)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return
			}
			if sse {
				if _, err := fmt.Fprint(w, "data: "); err != nil {
					return
				}
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if sse {
				if _, err := fmt.Fprintln(w); err != nil {
					return
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// parseSpec runs the raw spec through the same strict parse/validate
// path as spec files, so the API and the CLI reject identical inputs
// with identical errors.
func parseSpec(raw json.RawMessage) (savat.CampaignSpec, error) {
	return savat.ParseCampaignSpec(raw)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// statusFor maps service errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrNotDone):
		return http.StatusConflict
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}
