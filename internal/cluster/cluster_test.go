package cluster

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/paperdata"
	"repro/internal/savat"
)

func fig9(t *testing.T) *savat.Matrix {
	t.Helper()
	return paperdata.Experiments()[0].Matrix()
}

func TestClusterErrors(t *testing.T) {
	if _, err := Cluster(savat.NewMatrix([]savat.Event{savat.ADD})); err == nil {
		t.Error("single-event matrix should fail")
	}
}

func TestDendrogramShape(t *testing.T) {
	d, err := Cluster(fig9(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Merges) != 10 {
		t.Fatalf("11 events need 10 merges, got %d", len(d.Merges))
	}
	// Merge distances are non-decreasing for average linkage on this data.
	for i := 1; i < len(d.Merges); i++ {
		if d.Merges[i].Distance < d.Merges[i-1].Distance*0.7 {
			t.Errorf("merge %d distance %v far below previous %v",
				i, d.Merges[i].Distance, d.Merges[i-1].Distance)
		}
	}
}

// The headline result: cutting Figure 9 at four clusters recovers exactly
// the paper's Section V groups.
func TestFigure9FourGroups(t *testing.T) {
	d, err := Cluster(fig9(t))
	if err != nil {
		t.Fatal(err)
	}
	groups, err := d.CutK(4)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]savat.Event{
		{savat.LDM, savat.STM},
		{savat.LDL2, savat.STL2},
		{savat.LDL1, savat.STL1, savat.NOI, savat.ADD, savat.SUB, savat.MUL},
		{savat.DIV},
	}
	if !sameGroups(groups, want) {
		t.Errorf("groups = %v, want %v", groups, want)
	}
}

func sameGroups(a, b [][]savat.Event) bool {
	if len(a) != len(b) {
		return false
	}
	norm := func(gs [][]savat.Event) []string {
		out := make([]string, 0, len(gs))
		for _, g := range gs {
			names := make([]string, len(g))
			for i, e := range g {
				names[i] = e.String()
			}
			sort.Strings(names)
			out = append(out, reflect.ValueOf(names).Interface().([]string)[0]+":"+join(names))
		}
		sort.Strings(out)
		return out
	}
	return reflect.DeepEqual(norm(a), norm(b))
}

func join(ss []string) string {
	out := ""
	for _, s := range ss {
		out += s + ","
	}
	return out
}

func TestCutKBounds(t *testing.T) {
	d, err := Cluster(fig9(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CutK(0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := d.CutK(12); err == nil {
		t.Error("k>n should fail")
	}
	one, err := d.CutK(1)
	if err != nil || len(one) != 1 || len(one[0]) != 11 {
		t.Errorf("CutK(1) = %v, %v", one, err)
	}
	all, err := d.CutK(11)
	if err != nil || len(all) != 11 {
		t.Errorf("CutK(11) = %d groups, %v", len(all), err)
	}
}

func TestCutDistance(t *testing.T) {
	d, err := Cluster(fig9(t))
	if err != nil {
		t.Fatal(err)
	}
	// A threshold of 0.3 zJ of floor-adjusted SAVAT separates the four
	// Section V groups: intra-group excess is ≲0.25 zJ, the closest
	// inter-group link (DIV to the arithmetic cluster) is ≈0.4 zJ.
	groups := d.CutDistance(0.3e-21)
	if len(groups) != 4 {
		t.Errorf("CutDistance(2.5 zJ) = %d groups: %v", len(groups), groups)
	}
	if got := d.CutDistance(-1); len(got) != 11 {
		t.Errorf("negative threshold should keep all separate, got %d", len(got))
	}
	if got := d.CutDistance(1); len(got) != 1 {
		t.Errorf("huge threshold should merge all, got %d", len(got))
	}
}

func TestSilhouette(t *testing.T) {
	m := fig9(t)
	d, err := Cluster(m)
	if err != nil {
		t.Fatal(err)
	}
	four, err := d.CutK(4)
	if err != nil {
		t.Fatal(err)
	}
	sFour, err := Silhouette(m, four)
	if err != nil {
		t.Fatal(err)
	}
	if sFour < 0.3 {
		t.Errorf("four-group silhouette = %v, want strong separation", sFour)
	}
	// A bad cut scores worse.
	two, err := d.CutK(2)
	if err != nil {
		t.Fatal(err)
	}
	sTwo, err := Silhouette(m, two)
	if err != nil {
		t.Fatal(err)
	}
	if sFour <= sTwo {
		t.Errorf("four groups (%v) should beat two (%v)", sFour, sTwo)
	}
	// Single cluster: undefined.
	one, _ := d.CutK(1)
	if _, err := Silhouette(m, one); err == nil {
		t.Error("silhouette of one cluster should fail")
	}
	// Unknown event: error.
	if _, err := Silhouette(m, [][]savat.Event{{savat.Event(99)}, {savat.ADD}}); err == nil {
		t.Error("unknown event should fail")
	}
}
