// Package cluster groups instruction events by how distinguishable their
// side-channel signals are, using pairwise SAVAT as the distance metric —
// the strategy the paper proposes (Section III and VII) for taming the
// O(N²) measurement cost of large instruction sets: cluster opcodes with
// SAVAT as distance, then explore sequences using class representatives.
//
// Agglomerative average-linkage clustering over the symmetrized SAVAT
// matrix recovers the four groups the paper reads off Figure 9: the
// off-chip accesses {LDM, STM}, the L2 hits {LDL2, STL2}, the
// arithmetic/L1 group {ADD, SUB, MUL, NOI, LDL1, STL1}, and {DIV}.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/savat"
)

// Merge records one agglomeration step.
type Merge struct {
	// A and B are indices of the merged clusters: values < n refer to
	// leaf events (matrix order); values ≥ n refer to the cluster created
	// by merge number (value − n).
	A, B int
	// Distance is the average-linkage distance at which the merge occurred
	// (joules).
	Distance float64
}

// Dendrogram is the full agglomeration history of one matrix.
type Dendrogram struct {
	Events []savat.Event
	Merges []Merge
}

// Cluster builds the dendrogram for a SAVAT matrix. The distance between
// events a and b is the symmetrized SAVAT value minus the mean of the two
// diagonal (A/A) values: the diagonal is the measurement floor — noise,
// interference, and residual loop mismatch (paper Section V) — not signal,
// and rows with slow loops (LDM, DIV) carry a proportionally larger floor
// that would otherwise masquerade as distinguishability. After the
// adjustment, pairs whose signals the attacker genuinely cannot separate
// have distance ≈ 0 and cluster first.
func Cluster(m *savat.Matrix) (*Dendrogram, error) {
	n := m.Size()
	if n < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 events, have %d", n)
	}
	sym := adjustedDistances(m)

	// members[i] = leaf indices of active cluster i; nil = consumed.
	members := make(map[int][]int, n)
	for i := 0; i < n; i++ {
		members[i] = []int{i}
	}
	d := &Dendrogram{Events: append([]savat.Event(nil), m.Events...)}

	avgDist := func(a, b []int) float64 {
		sum := 0.0
		for _, i := range a {
			for _, j := range b {
				sum += sym.Vals[i][j]
			}
		}
		return sum / float64(len(a)*len(b))
	}

	next := n
	for len(members) > 1 {
		// Find the closest active pair (deterministic order).
		ids := make([]int, 0, len(members))
		for id := range members {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		bestA, bestB, bestD := -1, -1, 0.0
		for x := 0; x < len(ids); x++ {
			for y := x + 1; y < len(ids); y++ {
				dd := avgDist(members[ids[x]], members[ids[y]])
				if bestA < 0 || dd < bestD {
					bestA, bestB, bestD = ids[x], ids[y], dd
				}
			}
		}
		d.Merges = append(d.Merges, Merge{A: bestA, B: bestB, Distance: bestD})
		members[next] = append(append([]int{}, members[bestA]...), members[bestB]...)
		delete(members, bestA)
		delete(members, bestB)
		next++
	}
	return d, nil
}

// CutK cuts the dendrogram into k clusters (1 ≤ k ≤ number of events) and
// returns them ordered by their first event's matrix position.
func (d *Dendrogram) CutK(k int) ([][]savat.Event, error) {
	n := len(d.Events)
	if k < 1 || k > n {
		return nil, fmt.Errorf("cluster: cut of %d events into %d clusters", n, k)
	}
	return d.cut(len(d.Merges) - (k - 1)), nil
}

// CutDistance cuts the dendrogram keeping only merges below maxDist; pairs
// with SAVAT above the threshold end up in different clusters.
func (d *Dendrogram) CutDistance(maxDist float64) [][]savat.Event {
	applied := 0
	for _, m := range d.Merges {
		if m.Distance <= maxDist {
			applied++
		} else {
			break
		}
	}
	return d.cut(applied)
}

// cut applies the first `applied` merges and returns the clusters.
func (d *Dendrogram) cut(applied int) [][]savat.Event {
	n := len(d.Events)
	members := make(map[int][]int, n)
	for i := 0; i < n; i++ {
		members[i] = []int{i}
	}
	for i := 0; i < applied && i < len(d.Merges); i++ {
		m := d.Merges[i]
		members[n+i] = append(append([]int{}, members[m.A]...), members[m.B]...)
		delete(members, m.A)
		delete(members, m.B)
	}
	var groups [][]int
	for _, leaves := range members {
		s := append([]int(nil), leaves...)
		sort.Ints(s)
		groups = append(groups, s)
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
	out := make([][]savat.Event, len(groups))
	for gi, g := range groups {
		for _, leaf := range g {
			out[gi] = append(out[gi], d.Events[leaf])
		}
	}
	return out
}

// adjustedDistances symmetrizes the matrix and subtracts the per-pair
// measurement floor (the mean of the two diagonals), clamping at zero.
func adjustedDistances(m *savat.Matrix) *savat.Matrix {
	sym := m.Symmetrized()
	n := m.Size()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			adj := sym.Vals[i][j] - (m.Vals[i][i]+m.Vals[j][j])/2
			if adj < 0 {
				adj = 0
			}
			sym.Vals[i][j] = adj
		}
	}
	return sym
}

// Silhouette returns a crude clustering-quality score for a cut, using the
// same floor-adjusted distances as Cluster: the mean over events of
// (nearest-other-cluster distance − own-cluster distance) / max(of the
// two). Values near 1 indicate tight, well-separated clusters.
func Silhouette(m *savat.Matrix, groups [][]savat.Event) (float64, error) {
	sym := adjustedDistances(m)
	idx := func(e savat.Event) (int, error) {
		for i, ev := range m.Events {
			if ev == e {
				return i, nil
			}
		}
		return 0, fmt.Errorf("cluster: event %v not in matrix", e)
	}
	mean := func(i int, group []savat.Event) (float64, error) {
		sum, n := 0.0, 0
		for _, e := range group {
			j, err := idx(e)
			if err != nil {
				return 0, err
			}
			if j == i {
				continue
			}
			sum += sym.Vals[i][j]
			n++
		}
		if n == 0 {
			return 0, nil
		}
		return sum / float64(n), nil
	}

	total, count := 0.0, 0
	for gi, g := range groups {
		for _, e := range g {
			i, err := idx(e)
			if err != nil {
				return 0, err
			}
			a, err := mean(i, g)
			if err != nil {
				return 0, err
			}
			b := 0.0
			first := true
			for gj, og := range groups {
				if gj == gi {
					continue
				}
				v, err := mean(i, og)
				if err != nil {
					return 0, err
				}
				if first || v < b {
					b = v
					first = false
				}
			}
			if first {
				continue // single cluster: no silhouette
			}
			den := a
			if b > den {
				den = b
			}
			if den > 0 {
				total += (b - a) / den
				count++
			}
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("cluster: silhouette undefined for %d groups", len(groups))
	}
	return total / float64(count), nil
}
