// Package report renders measurement results in the forms the paper uses:
// numeric matrices (Figure 9), grayscale heat-map visualizations
// (Figures 10, 12, 14, 17, 18), bar charts of selected pairings
// (Figures 11, 13, 15, 16), and spectrum plots (Figures 7, 8) — all as
// plain text so every figure regenerates in a terminal — plus CSV export.
package report

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/savat"
	"repro/internal/specan"
)

// MatrixTable renders the matrix in zeptojoules with row/column headers,
// in the layout of the paper's Figure 9.
func MatrixTable(m *savat.Matrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "")
	for _, e := range m.Events {
		fmt.Fprintf(&b, "%7s", e)
	}
	b.WriteByte('\n')
	for i, row := range m.Vals {
		fmt.Fprintf(&b, "%-6s", m.Events[i])
		for _, v := range row {
			fmt.Fprintf(&b, "%7.1f", v*1e21)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MatrixTableWithStats renders mean ± σ cells from a campaign.
func MatrixTableWithStats(s *savat.MatrixStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s at %.2f m — SAVAT in zJ, mean ± σ over %d campaigns\n",
		s.Machine, s.Distance, campaignN(s))
	fmt.Fprintf(&b, "%-6s", "")
	for _, e := range s.Mean.Events {
		fmt.Fprintf(&b, "%13s", e)
	}
	b.WriteByte('\n')
	for i := range s.Cells {
		fmt.Fprintf(&b, "%-6s", s.Mean.Events[i])
		for _, c := range s.Cells[i] {
			fmt.Fprintf(&b, "%8.1f±%-4.2f", c.Mean*1e21, c.StdDev*1e21)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func campaignN(s *savat.MatrixStats) int {
	if len(s.Cells) == 0 || len(s.Cells[0]) == 0 {
		return 0
	}
	return s.Cells[0][0].N
}

// shades maps normalized intensity to glyphs, white (small) to black
// (large) like the paper's gray-scale figures.
var shades = []rune{' ', '░', '▒', '▓', '█'}

// Heatmap renders the matrix as a gray-scale grid: white = smallest
// value, black = largest, using a logarithmic scale since SAVAT spans
// more than an order of magnitude.
func Heatmap(m *savat.Matrix) string {
	min, max := math.Inf(1), math.Inf(-1)
	for _, row := range m.Vals {
		for _, v := range row {
			if v > 0 {
				min = math.Min(min, v)
				max = math.Max(max, v)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "")
	for _, e := range m.Events {
		fmt.Fprintf(&b, "%5s", e)
	}
	b.WriteByte('\n')
	for i, row := range m.Vals {
		fmt.Fprintf(&b, "%-6s", m.Events[i])
		for _, v := range row {
			idx := 0
			if v > 0 && max > min {
				f := (math.Log(v) - math.Log(min)) / (math.Log(max) - math.Log(min))
				idx = int(math.Round(f * float64(len(shades)-1)))
				if idx < 0 {
					idx = 0
				}
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			s := strings.Repeat(string(shades[idx]), 4)
			b.WriteString(" " + s)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "scale: '%c' = %.2g zJ … '%c' = %.2g zJ (log)\n",
		shades[0], min*1e21, shades[len(shades)-1], max*1e21)
	return b.String()
}

// Bar is one bar of a chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to the maximum value, with the
// numeric value (in zJ when unit == "zJ") appended.
func BarChart(title string, bars []Bar, width int, unit string) string {
	if width <= 0 {
		width = 50
	}
	max := 0.0
	for _, b := range bars {
		max = math.Max(max, b.Value)
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	for _, b := range bars {
		n := 0
		if max > 0 {
			n = int(math.Round(b.Value / max * float64(width)))
		}
		v := b.Value
		if unit == "zJ" {
			v *= 1e21
		}
		fmt.Fprintf(&sb, "%-12s |%-*s| %.2f %s\n", b.Label, width, strings.Repeat("█", n), v, unit)
	}
	return sb.String()
}

// SelectedPairsChart renders the paper's bar-chart pair selection from a
// measured matrix.
func SelectedPairsChart(title string, m *savat.Matrix, pairs [][2]savat.Event) (string, error) {
	bars := make([]Bar, 0, len(pairs))
	for _, p := range pairs {
		v, err := m.At(p[0], p[1])
		if err != nil {
			return "", err
		}
		bars = append(bars, Bar{Label: fmt.Sprintf("%v/%v", p[0], p[1]), Value: v})
	}
	return BarChart(title, bars, 50, "zJ"), nil
}

// SpectrumPlot renders the trace's PSD around center ± span as an ASCII
// plot with a logarithmic vertical axis, in the style of Figures 7/8.
func SpectrumPlot(tr *specan.Trace, center, span float64, cols, rows int) (string, error) {
	if cols <= 0 {
		cols = 78
	}
	if rows <= 0 {
		rows = 16
	}
	lo, hi := center-span, center+span
	kLo, err := tr.Spectrum.BinFor(lo)
	if err != nil {
		return "", err
	}
	kHi, err := tr.Spectrum.BinFor(hi)
	if err != nil {
		return "", err
	}
	n := tr.Spectrum.Bins()
	count := (kHi - kLo + n) % n
	if count <= 0 {
		return "", fmt.Errorf("report: empty spectrum span")
	}
	// Max-decimate the bins into the columns.
	col := make([]float64, cols)
	for i := range col {
		col[i] = tr.FloorPSD
	}
	for i := 0; i <= count; i++ {
		k := (kLo + i) % n
		c := i * (cols - 1) / count
		col[c] = math.Max(col[c], tr.Spectrum.PSD[k])
	}
	minV := tr.FloorPSD
	if minV <= 0 {
		minV = 1e-20
	}
	maxV := minV
	for _, v := range col {
		maxV = math.Max(maxV, v)
	}
	logMin, logMax := math.Log10(minV), math.Log10(maxV*1.1)
	var b strings.Builder
	for r := rows - 1; r >= 0; r-- {
		thresh := math.Pow(10, logMin+(logMax-logMin)*float64(r)/float64(rows))
		if r == rows-1 || r == 0 || r == rows/2 {
			fmt.Fprintf(&b, "%8.1e |", thresh)
		} else {
			b.WriteString("         |")
		}
		for _, v := range col {
			if v >= thresh {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("         +" + strings.Repeat("-", cols) + "\n")
	fmt.Fprintf(&b, "          %-12.1f kHz %*s %.1f kHz (RBW %.1f Hz, W/Hz)\n",
		lo/1e3, cols-36, "", hi/1e3, tr.ActualRBW)
	return b.String(), nil
}

// CSV renders the matrix as comma-separated zJ values with headers.
func CSV(m *savat.Matrix) string {
	var b strings.Builder
	b.WriteString("A\\B")
	for _, e := range m.Events {
		b.WriteString("," + e.String())
	}
	b.WriteByte('\n')
	for i, row := range m.Vals {
		b.WriteString(m.Events[i].String())
		for _, v := range row {
			fmt.Fprintf(&b, ",%.4f", v*1e21)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseCSV parses a matrix previously written by CSV (zJ values) back
// into a Matrix in joules. The header row must name known events.
func ParseCSV(text string) (*savat.Matrix, error) {
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) < 2 {
		return nil, fmt.Errorf("report: CSV needs a header and rows")
	}
	header := strings.Split(lines[0], ",")
	if len(header) < 2 {
		return nil, fmt.Errorf("report: malformed CSV header %q", lines[0])
	}
	events := make([]savat.Event, 0, len(header)-1)
	for _, name := range header[1:] {
		e, err := savat.EventByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	if len(lines)-1 != len(events) {
		return nil, fmt.Errorf("report: %d rows for %d events", len(lines)-1, len(events))
	}
	m := savat.NewMatrix(events)
	for i, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != len(events)+1 {
			return nil, fmt.Errorf("report: row %d has %d fields, want %d", i, len(fields), len(events)+1)
		}
		rowEvent, err := savat.EventByName(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, err
		}
		if rowEvent != events[i] {
			return nil, fmt.Errorf("report: row %d is %v, want %v (rows must match header order)", i, rowEvent, events[i])
		}
		for j, f := range fields[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("report: row %d col %d: %w", i, j, err)
			}
			m.Vals[i][j] = v * 1e-21
		}
	}
	return m, nil
}
