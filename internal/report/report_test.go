package report

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"repro/internal/dsp"
	"repro/internal/paperdata"
	"repro/internal/savat"
	"repro/internal/specan"
	"repro/internal/stats"
)

func fig9() *savat.Matrix {
	return paperdata.Experiments()[0].Matrix()
}

func TestMatrixTable(t *testing.T) {
	out := MatrixTable(fig9())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 12 {
		t.Fatalf("table has %d lines, want 12", len(lines))
	}
	if !strings.Contains(lines[0], "LDM") || !strings.Contains(lines[0], "DIV") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "11.5") {
		t.Errorf("LDM row missing 11.5: %q", lines[1])
	}
	if !strings.HasPrefix(lines[11], "DIV") {
		t.Errorf("last row: %q", lines[11])
	}
}

func TestMatrixTableWithStats(t *testing.T) {
	s := &savat.MatrixStats{
		Machine:  "Core2Duo",
		Distance: 0.1,
		Mean:     fig9(),
	}
	s.Cells = make([][]stats.Summary, 11)
	for i := range s.Cells {
		s.Cells[i] = make([]stats.Summary, 11)
		for j := range s.Cells[i] {
			s.Cells[i][j] = stats.Summary{N: 10, Mean: s.Mean.Vals[i][j], StdDev: s.Mean.Vals[i][j] * 0.05}
		}
	}
	out := MatrixTableWithStats(s)
	if !strings.Contains(out, "Core2Duo") || !strings.Contains(out, "10 campaigns") {
		t.Errorf("header missing metadata:\n%s", out)
	}
	if !strings.Contains(out, "±") {
		t.Error("cells missing ± sigma")
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap(fig9())
	if !strings.Contains(out, "█") {
		t.Error("heatmap missing dark shade for the largest values")
	}
	if !strings.Contains(out, "scale:") {
		t.Error("heatmap missing scale legend")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 13 { // header + 11 rows + legend
		t.Errorf("heatmap has %d lines", len(lines))
	}
	// The darkest cells should be in the STL2 row (largest values).
	stl2Line := lines[4]
	if !strings.Contains(stl2Line, "████") {
		t.Errorf("STL2 row not dark: %q", stl2Line)
	}
	// Diagonal arithmetic cells should be light (spaces or light shade).
	addLine := lines[8]
	if strings.Count(addLine, "█") > 8 {
		t.Errorf("ADD row too dark: %q", addLine)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("title", []Bar{
		{"ADD/ADD", 0.7e-21},
		{"STL2/DIV", 10.1e-21},
	}, 40, "zJ")
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("chart lines = %d", len(lines))
	}
	small := strings.Count(lines[1], "█")
	big := strings.Count(lines[2], "█")
	if big != 40 {
		t.Errorf("largest bar = %d chars, want full width", big)
	}
	if small >= big/4 {
		t.Errorf("bar proportions wrong: %d vs %d", small, big)
	}
	if !strings.Contains(lines[2], "10.10 zJ") {
		t.Errorf("value label: %q", lines[2])
	}
	// Zero width defaults.
	if out := BarChart("", []Bar{{"x", 1}}, 0, ""); !strings.Contains(out, "x") {
		t.Error("default width chart broken")
	}
}

func TestSelectedPairsChart(t *testing.T) {
	out, err := SelectedPairsChart("Figure 11", fig9(), paperdata.SelectedPairs)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ADD/ADD", "STL2/DIV", "LDL2/LDM"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %s:\n%s", want, out)
		}
	}
	bad := savat.NewMatrix([]savat.Event{savat.ADD})
	if _, err := SelectedPairsChart("", bad, paperdata.SelectedPairs); err == nil {
		t.Error("missing events should fail")
	}
}

func TestSpectrumPlot(t *testing.T) {
	// Synthesize a tone at 80 kHz over a floor.
	fs := float64(1 << 18)
	n := 1 << 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(1e-6, 2*math.Pi*80e3*float64(i)/fs)
	}
	an := specan.MustNew(specan.Config{RBW: 16, Window: dsp.Hann, FloorPSD: 6e-18})
	tr, err := an.Analyze(x, fs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := SpectrumPlot(tr, 80e3, 2e3, 60, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#") {
		t.Error("plot missing signal")
	}
	if !strings.Contains(out, "kHz") || !strings.Contains(out, "RBW") {
		t.Error("plot missing axis labels")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 14 { // 12 rows + axis + label
		t.Errorf("plot rows = %d", len(lines))
	}
	// The peak column is tall: some column has # in the top row.
	if !strings.Contains(lines[0], "#") {
		t.Error("tone should reach the top row")
	}
	if _, err := SpectrumPlot(tr, 1e9, 2e3, 0, 0); err == nil {
		t.Error("out-of-range span should fail")
	}
}

func TestCSV(t *testing.T) {
	out := CSV(fig9())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 12 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "A\\B,LDM,") {
		t.Errorf("CSV header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "11.5000") {
		t.Errorf("CSV LDM row: %q", lines[1])
	}
	for i, l := range lines {
		if got := strings.Count(l, ","); got != 11 {
			t.Errorf("line %d has %d commas", i, got)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	m := fig9()
	back, err := ParseCSV(CSV(m))
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Vals {
		for j := range m.Vals[i] {
			if diff := back.Vals[i][j] - m.Vals[i][j]; diff > 1e-25 || diff < -1e-25 {
				t.Fatalf("cell (%d,%d): %v != %v", i, j, back.Vals[i][j], m.Vals[i][j])
			}
		}
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"A\\B,LDM",
		"A\\B,FROB\nFROB,1.0",
		"A\\B,LDM\nSTM,1.0",         // row order mismatch
		"A\\B,LDM\nLDM,1.0,2.0",     // wrong field count
		"A\\B,LDM\nLDM,abc",         // bad number
		"A\\B,LDM,STM\nLDM,1.0,2.0", // missing row
	}
	for _, c := range cases {
		if _, err := ParseCSV(c); err == nil {
			t.Errorf("ParseCSV(%q) should fail", c)
		}
	}
}
