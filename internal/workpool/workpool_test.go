package workpool

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestCapacityAccounting(t *testing.T) {
	p := New(2)
	if p.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", p.Cap())
	}
	if !p.TryAcquire() || !p.TryAcquire() {
		t.Fatal("expected two tokens")
	}
	if p.TryAcquire() {
		t.Fatal("acquired a third token from a 2-token pool")
	}
	p.Release()
	if !p.TryAcquire() {
		t.Fatal("released token not reacquirable")
	}
	p.Release()
	p.Release()
}

func TestZeroCapacityRunsInline(t *testing.T) {
	p := New(0)
	if p.TryAcquire() {
		t.Fatal("zero-capacity pool granted a token")
	}
	ran := false
	if p.Go(func() { ran = true }) {
		t.Fatal("zero-capacity Go claimed to spawn")
	}
	if ran {
		t.Fatal("Go ran f without a token")
	}
}

func TestNegativeCapacityClamped(t *testing.T) {
	if got := New(-3).Cap(); got != 0 {
		t.Fatalf("Cap = %d, want 0", got)
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Release()
}

func TestGoRunsAndReleases(t *testing.T) {
	p := New(1)
	var wg sync.WaitGroup
	var ran atomic.Bool
	wg.Add(1)
	if !p.Go(func() { defer wg.Done(); ran.Store(true) }) {
		t.Fatal("Go failed with a free token")
	}
	wg.Wait()
	if !ran.Load() {
		t.Fatal("f did not run")
	}
	// The token must come back after f returns.
	for i := 0; i < 1000; i++ {
		if p.TryAcquire() {
			p.Release()
			return
		}
	}
	t.Fatal("token not released after Go completed")
}

func TestReserve(t *testing.T) {
	p := New(3)
	held, release := p.Reserve(2)
	if held != 2 {
		t.Fatalf("held = %d, want 2", held)
	}
	if held2, release2 := p.Reserve(5); held2 != 1 {
		t.Fatalf("second reserve held %d, want 1", held2)
	} else {
		release2()
	}
	release()
	release() // idempotent: a double release must not over-fill the pool
	if held3, release3 := p.Reserve(5); held3 != 3 {
		t.Fatalf("after release, reserve held %d, want 3", held3)
	} else {
		release3()
	}
}

// TestConcurrentBound hammers the pool from many goroutines and checks
// the number of simultaneously-held tokens never exceeds capacity.
func TestConcurrentBound(t *testing.T) {
	const capTokens = 4
	p := New(capTokens)
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if p.TryAcquire() {
					n := inFlight.Add(1)
					for {
						old := peak.Load()
						if n <= old || peak.CompareAndSwap(old, n) {
							break
						}
					}
					inFlight.Add(-1)
					p.Release()
				}
			}
		}()
	}
	wg.Wait()
	if peak.Load() > capTokens {
		t.Fatalf("peak concurrent tokens %d exceeds capacity %d", peak.Load(), capTokens)
	}
}
