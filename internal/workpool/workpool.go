// Package workpool provides a process-wide bounded token pool that
// caps the *extra* goroutines the measurement pipeline fans out.
//
// Two layers want parallelism at once: the campaign engine runs one
// worker per core, and inside every worker the streaming analyzer can
// fan per-segment FFT work out to helpers. Unchecked, a matrix campaign
// would schedule workers × segments goroutines and oversubscribe the
// machine. Both layers therefore draw from one shared pool whose
// capacity is GOMAXPROCS−1 (the caller's own goroutine is the implied
// extra token): engine workers beyond the first each hold a token for
// their lifetime, and the per-segment fan-out inside a worker only
// spawns helpers when tokens remain. On a saturated engine — or a
// single-core machine — the pool is empty and every stage simply runs
// inline on its caller, which is also the degenerate case the
// bit-identity tests pin: parallel and inline execution produce the
// same bytes because reduction order never depends on scheduling.
package workpool

import (
	"runtime"
	"sync"

	"repro/internal/obs"
)

// Pool-wide scheduling metrics: how often fan-out work actually got a
// goroutine versus running inline on its caller. Both are no-ops until
// the observability registry is enabled.
var (
	mSpawned = obs.Default.Counter("workpool.spawned")
	mInline  = obs.Default.Counter("workpool.inline")
)

// Pool is a bounded token bucket. The zero value is unusable; use New.
// All methods are safe for concurrent use.
type Pool struct {
	tokens chan struct{}
}

// New returns a pool with the given capacity. A non-positive capacity
// yields a pool that never grants tokens (all work runs inline).
func New(capacity int) *Pool {
	if capacity < 0 {
		capacity = 0
	}
	p := &Pool{tokens: make(chan struct{}, capacity)}
	for i := 0; i < capacity; i++ {
		p.tokens <- struct{}{}
	}
	return p
}

// Default is the process-wide pool shared by the campaign engine and
// the streaming analyzer, sized GOMAXPROCS−1 at startup.
var Default = New(runtime.GOMAXPROCS(0) - 1)

// Cap returns the pool's total token capacity.
func (p *Pool) Cap() int { return cap(p.tokens) }

// TryAcquire takes a token if one is free, without blocking.
func (p *Pool) TryAcquire() bool {
	select {
	case <-p.tokens:
		return true
	default:
		return false
	}
}

// Release returns a token taken with TryAcquire (or granted to a Go
// callback). Releasing more tokens than were acquired panics.
func (p *Pool) Release() {
	select {
	case p.tokens <- struct{}{}:
	default:
		panic("workpool: Release without Acquire")
	}
}

// Go runs f on a new goroutine if a token is free, returning true; the
// token is released when f returns. With no token it returns false
// WITHOUT running f — the caller runs the work inline. Callers that
// need completion tracking wrap f with their own WaitGroup:
//
//	wg.Add(1)
//	if !pool.Go(func() { defer wg.Done(); work() }) {
//		work()
//		wg.Done()
//	}
func (p *Pool) Go(f func()) bool {
	if !p.TryAcquire() {
		mInline.Inc()
		return false
	}
	mSpawned.Inc()
	go func() {
		defer p.Release()
		f()
	}()
	return true
}

// Reserve acquires up to max tokens (without blocking) and returns a
// release function for all of them. Engine workers use it to hold their
// core's token for the lifetime of the run.
func (p *Pool) Reserve(max int) (held int, release func()) {
	for held < max && p.TryAcquire() {
		held++
	}
	n := held
	var once sync.Once
	return held, func() {
		once.Do(func() {
			for i := 0; i < n; i++ {
				p.Release()
			}
		})
	}
}
