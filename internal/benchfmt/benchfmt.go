// Package benchfmt parses `go test -bench` text output into the
// machine-readable snapshot shape shared by cmd/benchjson (which
// records baselines) and cmd/benchguard (which compares runs against
// them).
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Bench is one benchmark result: a single `go test -bench` output line,
// or — after Aggregate — the summary of every line one benchmark
// produced across `-count` runs.
type Bench struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"` // total b.N across samples
	Metrics    map[string]float64 `json:"metrics"`    // per-metric mean across samples

	// Samples is how many result lines were aggregated into this entry
	// (1 before Aggregate, or for a benchmark run once). Variance holds
	// the per-metric unbiased sample variance across those lines —
	// present only when Samples > 1, so a snapshot records how noisy
	// each number is instead of pretending a single sample is exact.
	Samples  int                `json:"samples,omitempty"`
	Variance map[string]float64 `json:"variance,omitempty"`
}

// File is the snapshot written to (and read back from) disk.
type File struct {
	Date       string  `json:"date"` // YYYYMMDD
	GOOS       string  `json:"goos,omitempty"`
	GOARCH     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Aggregate merges result lines that share a (package, name) — the
// shape `go test -bench -count=N` produces — into one Bench per
// benchmark: Metrics become per-metric means, Variance the unbiased
// sample variances (when more than one sample exists), Iterations the
// total b.N, and Samples the line count. First-seen order is kept, and
// means survive re-aggregation unchanged.
func (f *File) Aggregate() {
	type group struct {
		bench   Bench
		sums    map[string]float64 // Σv per metric
		sumsq   map[string]float64 // Σv² per metric
		counts  map[string]int     // lines carrying the metric
		samples int
	}
	var order []string
	groups := map[string]*group{}
	for _, b := range f.Benchmarks {
		id := b.Package + "\x00" + b.Name
		g, ok := groups[id]
		if !ok {
			g = &group{
				bench: Bench{Name: b.Name, Package: b.Package},
				sums:  map[string]float64{}, sumsq: map[string]float64{}, counts: map[string]int{},
			}
			groups[id] = g
			order = append(order, id)
		}
		g.bench.Iterations += b.Iterations
		g.samples++
		for unit, v := range b.Metrics {
			g.sums[unit] += v
			g.sumsq[unit] += v * v
			g.counts[unit]++
		}
	}
	agg := make([]Bench, 0, len(order))
	for _, id := range order {
		g := groups[id]
		g.bench.Samples = g.samples
		g.bench.Metrics = make(map[string]float64, len(g.sums))
		for unit, sum := range g.sums {
			n := float64(g.counts[unit])
			mean := sum / n
			g.bench.Metrics[unit] = mean
			if g.counts[unit] > 1 {
				// Unbiased sample variance; clamp the tiny negative values
				// the Σv²−n·mean² form produces for identical samples.
				v := (g.sumsq[unit] - n*mean*mean) / (n - 1)
				if v < 0 {
					v = 0
				}
				if g.bench.Variance == nil {
					g.bench.Variance = map[string]float64{}
				}
				g.bench.Variance[unit] = v
			}
		}
		agg = append(agg, g.bench)
	}
	f.Benchmarks = agg
}

// Find returns the first benchmark whose name equals name.
func (f *File) Find(name string) (Bench, bool) {
	for _, b := range f.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Bench{}, false
}

// Parse reads `go test -bench` output and collects every benchmark
// line, tracking the `pkg:` header lines so each result carries its
// package.
func Parse(r io.Reader) (*File, error) {
	f := &File{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			f.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			f.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			f.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := ParseLine(line)
			if err != nil {
				return nil, err
			}
			b.Package = pkg
			f.Benchmarks = append(f.Benchmarks, b)
		}
	}
	return f, sc.Err()
}

// ParseLine splits one result line — name, iteration count, then
// (value, unit) pairs.
func ParseLine(line string) (Bench, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Bench{}, fmt.Errorf("benchfmt: malformed benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, fmt.Errorf("benchfmt: iteration count in %q: %w", line, err)
	}
	b := Bench{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, fmt.Errorf("benchfmt: metric value in %q: %w", line, err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}
