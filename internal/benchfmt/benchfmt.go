// Package benchfmt parses `go test -bench` text output into the
// machine-readable snapshot shape shared by cmd/benchjson (which
// records baselines) and cmd/benchguard (which compares runs against
// them).
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Bench is one benchmark result line.
type Bench struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the snapshot written to (and read back from) disk.
type File struct {
	Date       string  `json:"date"` // YYYYMMDD
	GOOS       string  `json:"goos,omitempty"`
	GOARCH     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Find returns the first benchmark whose name equals name.
func (f *File) Find(name string) (Bench, bool) {
	for _, b := range f.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Bench{}, false
}

// Parse reads `go test -bench` output and collects every benchmark
// line, tracking the `pkg:` header lines so each result carries its
// package.
func Parse(r io.Reader) (*File, error) {
	f := &File{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			f.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			f.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			f.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := ParseLine(line)
			if err != nil {
				return nil, err
			}
			b.Package = pkg
			f.Benchmarks = append(f.Benchmarks, b)
		}
	}
	return f, sc.Err()
}

// ParseLine splits one result line — name, iteration count, then
// (value, unit) pairs.
func ParseLine(line string) (Bench, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Bench{}, fmt.Errorf("benchfmt: malformed benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, fmt.Errorf("benchfmt: iteration count in %q: %w", line, err)
	}
	b := Bench{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, fmt.Errorf("benchfmt: metric value in %q: %w", line, err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}
