package benchfmt

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig09MatrixCore2Duo10cm 	       1	 965362736 ns/op	         1.237 cell-ratio	         5.000 diag-violations	         0.9424 spearman
BenchmarkNaiveVsAlternation-4 	      12	  91234567 ns/op	     123 B/op	       2 allocs/op
PASS
ok  	repro	3.059s
pkg: repro/internal/dsp
BenchmarkWelch 	     100	   1234567 ns/op
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.GOOS != "linux" || f.GOARCH != "amd64" || !strings.Contains(f.CPU, "Xeon") {
		t.Errorf("header = %q/%q/%q", f.GOOS, f.GOARCH, f.CPU)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(f.Benchmarks))
	}
	fig := f.Benchmarks[0]
	if fig.Name != "BenchmarkFig09MatrixCore2Duo10cm" || fig.Package != "repro" || fig.Iterations != 1 {
		t.Errorf("fig09 = %+v", fig)
	}
	for unit, want := range map[string]float64{
		"ns/op": 965362736, "cell-ratio": 1.237, "diag-violations": 5, "spearman": 0.9424,
	} {
		if got := fig.Metrics[unit]; got != want {
			t.Errorf("fig09 %s = %g, want %g", unit, got, want)
		}
	}
	if got := f.Benchmarks[1].Metrics["allocs/op"]; got != 2 {
		t.Errorf("allocs/op = %g, want 2", got)
	}
	if f.Benchmarks[2].Package != "repro/internal/dsp" {
		t.Errorf("third package = %q", f.Benchmarks[2].Package)
	}

	if _, ok := f.Find("BenchmarkWelch"); !ok {
		t.Error("Find missed BenchmarkWelch")
	}
	if _, ok := f.Find("BenchmarkNope"); ok {
		t.Error("Find invented BenchmarkNope")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX 1 12 ns/op extra",  // odd metric fields
		"BenchmarkX notanint 12 ns/op", // bad iteration count
		"BenchmarkX 1 twelve ns/op",    // bad metric value
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed line %q", bad)
		}
	}
}
