package benchfmt

import (
	"fmt"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig09MatrixCore2Duo10cm 	       1	 965362736 ns/op	         1.237 cell-ratio	         5.000 diag-violations	         0.9424 spearman
BenchmarkNaiveVsAlternation-4 	      12	  91234567 ns/op	     123 B/op	       2 allocs/op
PASS
ok  	repro	3.059s
pkg: repro/internal/dsp
BenchmarkWelch 	     100	   1234567 ns/op
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.GOOS != "linux" || f.GOARCH != "amd64" || !strings.Contains(f.CPU, "Xeon") {
		t.Errorf("header = %q/%q/%q", f.GOOS, f.GOARCH, f.CPU)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(f.Benchmarks))
	}
	fig := f.Benchmarks[0]
	if fig.Name != "BenchmarkFig09MatrixCore2Duo10cm" || fig.Package != "repro" || fig.Iterations != 1 {
		t.Errorf("fig09 = %+v", fig)
	}
	for unit, want := range map[string]float64{
		"ns/op": 965362736, "cell-ratio": 1.237, "diag-violations": 5, "spearman": 0.9424,
	} {
		if got := fig.Metrics[unit]; got != want {
			t.Errorf("fig09 %s = %g, want %g", unit, got, want)
		}
	}
	if got := f.Benchmarks[1].Metrics["allocs/op"]; got != 2 {
		t.Errorf("allocs/op = %g, want 2", got)
	}
	if f.Benchmarks[2].Package != "repro/internal/dsp" {
		t.Errorf("third package = %q", f.Benchmarks[2].Package)
	}

	if _, ok := f.Find("BenchmarkWelch"); !ok {
		t.Error("Find missed BenchmarkWelch")
	}
	if _, ok := f.Find("BenchmarkNope"); ok {
		t.Error("Find invented BenchmarkNope")
	}
}

// Aggregate must fold -count repetitions of one benchmark into a
// single entry carrying the cross-run mean and sample variance, keep
// same-named benchmarks from different packages apart, and leave
// single-sample files unchanged (no variance field).
func TestAggregate(t *testing.T) {
	const counted = `pkg: repro
BenchmarkHot 	       2	 100 ns/op	       0 allocs/op
BenchmarkHot 	       2	 140 ns/op	       0 allocs/op
BenchmarkHot 	       2	 120 ns/op	       0 allocs/op
BenchmarkCold 	       1	 7 ns/op
pkg: repro/internal/dsp
BenchmarkHot 	       4	 50 ns/op
`
	f, err := Parse(strings.NewReader(counted))
	if err != nil {
		t.Fatal(err)
	}
	f.Aggregate()
	if len(f.Benchmarks) != 3 {
		t.Fatalf("aggregated to %d entries, want 3: %+v", len(f.Benchmarks), f.Benchmarks)
	}
	hot := f.Benchmarks[0]
	if hot.Name != "BenchmarkHot" || hot.Package != "repro" {
		t.Fatalf("first entry = %+v", hot)
	}
	if hot.Samples != 3 || hot.Iterations != 6 {
		t.Errorf("hot samples/iterations = %d/%d, want 3/6", hot.Samples, hot.Iterations)
	}
	if got := hot.Metrics["ns/op"]; got != 120 {
		t.Errorf("hot mean ns/op = %g, want 120", got)
	}
	if got := hot.Variance["ns/op"]; got != 400 { // ((20²+0²+20²)/2)
		t.Errorf("hot ns/op variance = %g, want 400", got)
	}
	if got := hot.Variance["allocs/op"]; got != 0 {
		t.Errorf("hot allocs/op variance = %g, want 0", got)
	}
	cold := f.Benchmarks[1]
	if cold.Samples != 1 || cold.Variance != nil {
		t.Errorf("cold = %+v: single sample must carry no variance", cold)
	}
	if dspHot := f.Benchmarks[2]; dspHot.Package != "repro/internal/dsp" || dspHot.Metrics["ns/op"] != 50 {
		t.Errorf("per-package split lost: %+v", dspHot)
	}

	// Idempotent: aggregating the aggregate changes nothing.
	before := fmt.Sprintf("%+v", f.Benchmarks)
	f.Aggregate()
	// Samples stays, variance is dropped (one sample per entry now), but
	// means and order must hold.
	if len(f.Benchmarks) != 3 || f.Benchmarks[0].Metrics["ns/op"] != 120 {
		t.Errorf("re-aggregation changed results:\nbefore %s\nafter  %+v", before, f.Benchmarks)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX 1 12 ns/op extra",  // odd metric fields
		"BenchmarkX notanint 12 ns/op", // bad iteration count
		"BenchmarkX 1 twelve ns/op",    // bad metric value
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed line %q", bad)
		}
	}
}
