// Package buf holds the grow-or-reslice buffer helper shared by the
// measurement pipeline's scratch types. Every scratch used to carry its
// own resizeComplex/resizeFloats copy; they all implement the same
// contract, so it lives here once.
package buf

// Grow returns a slice of length n backed by s when s has the
// capacity, and by a fresh allocation otherwise. Existing contents are
// NOT preserved or cleared: the caller owns initializing the returned
// slice, which is exactly what scratch buffers that are fully
// overwritten per use want — steady-state reuse costs nothing, and
// growth never pays for a copy of stale data.
func Grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
