package buf

import "testing"

func TestGrowReusesCapacity(t *testing.T) {
	s := make([]float64, 8, 16)
	s[0] = 42
	g := Grow(s, 12)
	if len(g) != 12 {
		t.Fatalf("len = %d, want 12", len(g))
	}
	if &g[0] != &s[0] {
		t.Fatal("Grow reallocated despite sufficient capacity")
	}
	if g[0] != 42 {
		t.Fatal("Grow within capacity must not clear contents")
	}
}

func TestGrowShrinksInPlace(t *testing.T) {
	s := make([]complex128, 8)
	g := Grow(s, 3)
	if len(g) != 3 || &g[0] != &s[0] {
		t.Fatalf("shrink reallocated or mis-sized: len=%d", len(g))
	}
}

func TestGrowAllocatesWhenShort(t *testing.T) {
	s := make([]int, 4, 4)
	g := Grow(s, 9)
	if len(g) != 9 {
		t.Fatalf("len = %d, want 9", len(g))
	}
	if cap(s) >= 9 {
		t.Fatal("test setup: s unexpectedly large")
	}
	for i, v := range g {
		if v != 0 {
			t.Fatalf("fresh allocation not zeroed at %d: %v", i, v)
		}
	}
}

func TestGrowNil(t *testing.T) {
	g := Grow[byte](nil, 5)
	if len(g) != 5 {
		t.Fatalf("len = %d, want 5", len(g))
	}
	if Grow[byte](nil, 0) == nil {
		// A nil result for n=0 is acceptable; just ensure no panic and
		// zero length.
		return
	}
}

func TestGrowZeroAllocSteadyState(t *testing.T) {
	s := make([]float64, 1024)
	allocs := testing.AllocsPerRun(100, func() {
		s = Grow(s, 1024)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Grow allocated %.1f times per run", allocs)
	}
}
