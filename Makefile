GO ?= go
FUZZTIME ?= 30s

# Package:target pairs for every native fuzz target in the tree; each
# -fuzz invocation must match exactly one target.
FUZZ_TARGETS := \
	./internal/dsp:FuzzPlanForwardVsNaiveDFT \
	./internal/dsp:FuzzWelchPairVsSingle \
	./internal/isa:FuzzDecodeEncodeRoundTrip \
	./internal/isa:FuzzEncodeDecodeInstruction \
	./internal/engine:FuzzLoadCheckpoint \
	./internal/engine:FuzzCacheDiskEntry

.PHONY: build test bench bench-json verify fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full figure-matrix benchmarks (minutes; see README for current numbers).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFig(09|12|14)Matrix' -benchtime=1x .

# Machine-readable benchmark snapshot: compile and run EVERY benchmark
# in the tree once and write ns/op plus all reported metrics to
# BENCH_<YYYYMMDD>.json (for tracking perf trajectories across commits).
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./... > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	$(GO) run ./cmd/benchjson -out BENCH_$$(date +%Y%m%d).json < bench.out
	@rm -f bench.out

# Tier-1 gate plus a perf smoke: vet, race-enabled tests, and one pass of
# the Figure 9 matrix benchmark so fast-path breakage (correctness or a
# gross slowdown) is caught before it lands.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run '^$$' -bench BenchmarkFig09MatrixCore2Duo10cm -benchtime=1x .

# Short coverage-guided run of every fuzz target (FUZZTIME each); the
# committed seed corpora additionally run as plain unit tests in `test`.
fuzz-smoke:
	@set -e; for spec in $(FUZZ_TARGETS); do \
		pkg=$${spec%%:*}; target=$${spec##*:}; \
		echo "fuzz $$pkg $$target"; \
		$(GO) test $$pkg -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZTIME); \
	done
