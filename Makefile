GO ?= go
FUZZTIME ?= 30s

# Package:target pairs for every native fuzz target in the tree; each
# -fuzz invocation must match exactly one target.
FUZZ_TARGETS := \
	./internal/dsp:FuzzPlanForwardVsNaiveDFT \
	./internal/dsp:FuzzWelchPairVsSingle \
	./internal/isa:FuzzDecodeEncodeRoundTrip \
	./internal/isa:FuzzEncodeDecodeInstruction \
	./internal/engine:FuzzLoadCheckpoint \
	./internal/engine:FuzzCacheDiskEntry

.PHONY: build test bench verify fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full figure-matrix benchmarks (minutes; see README for current numbers).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFig(09|12|14)Matrix' -benchtime=1x .

# Tier-1 gate plus a perf smoke: vet, race-enabled tests, and one pass of
# the Figure 9 matrix benchmark so fast-path breakage (correctness or a
# gross slowdown) is caught before it lands.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run '^$$' -bench BenchmarkFig09MatrixCore2Duo10cm -benchtime=1x .

# Short coverage-guided run of every fuzz target (FUZZTIME each); the
# committed seed corpora additionally run as plain unit tests in `test`.
fuzz-smoke:
	@set -e; for spec in $(FUZZ_TARGETS); do \
		pkg=$${spec%%:*}; target=$${spec##*:}; \
		echo "fuzz $$pkg $$target"; \
		$(GO) test $$pkg -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZTIME); \
	done
