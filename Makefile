GO ?= go

.PHONY: build test bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full figure-matrix benchmarks (minutes; see README for current numbers).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFig(09|12|14)Matrix' -benchtime=1x .

# Tier-1 gate plus a perf smoke: vet, race-enabled tests, and one pass of
# the Figure 9 matrix benchmark so fast-path breakage (correctness or a
# gross slowdown) is caught before it lands.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run '^$$' -bench BenchmarkFig09MatrixCore2Duo10cm -benchtime=1x .
