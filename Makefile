GO ?= go
FUZZTIME ?= 30s

# Package:target pairs for every native fuzz target in the tree; each
# -fuzz invocation must match exactly one target.
FUZZ_TARGETS := \
	./internal/dsp:FuzzPlanForwardVsNaiveDFT \
	./internal/dsp:FuzzForwardAsmVsPure \
	./internal/dsp:FuzzWelchPairVsSingle \
	./internal/isa:FuzzDecodeEncodeRoundTrip \
	./internal/isa:FuzzEncodeDecodeInstruction \
	./internal/engine:FuzzLoadCheckpoint \
	./internal/engine:FuzzCacheDiskEntry \
	./internal/store:FuzzStoreRecord \
	./internal/store:FuzzStoreHeader

.PHONY: build test bench bench-json bench-guard lint verify fuzz-smoke daemon-smoke

# Baseline snapshot cmd/benchguard compares against; re-record with
# `make bench-json` after intentional performance changes.
BENCH_BASELINE ?= BENCH_20260808.json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full figure-matrix benchmarks (minutes; see README for current numbers).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkFig(09|12|14)Matrix' -benchtime=1x .

# Machine-readable benchmark snapshot: compile and run EVERY benchmark
# in the tree — multiple iterations per run and multiple runs per
# benchmark, so each recorded metric is a cross-run mean with a
# variance field instead of a single noisy sample — and write the
# aggregate to BENCH_<YYYYMMDD>.json (for tracking perf trajectories
# across commits).
BENCH_JSON_TIME ?= 2x
BENCH_JSON_COUNT ?= 3
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime=$(BENCH_JSON_TIME) -count=$(BENCH_JSON_COUNT) ./... > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	$(GO) run ./cmd/benchjson -out BENCH_$$(date +%Y%m%d).json < bench.out
	@rm -f bench.out

# Static analysis: vet always; staticcheck when installed (CI installs a
# pinned version, local runs without it degrade gracefully).
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipped (go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)"; \
	fi

# Perf contract on the campaign hot path: the streaming measurement with
# the observability registry disabled must stay within BUDGET of the
# recorded baseline (NOISE is slack for run/machine variance — CI
# runners are not the baseline machine), the arena-backed steady state
# must perform zero heap allocations per cell, and the disabled
# instrumentation sites themselves must report exactly 0 allocs/op.
BENCH_GUARD_BUDGET ?= 0.01
BENCH_GUARD_NOISE ?= 0.25
bench-guard:
	$(GO) test -run '^$$' -bench 'BenchmarkMeasureKernelScratch$$' -benchtime 20x . > benchguard.out || (cat benchguard.out; rm -f benchguard.out; exit 1)
	$(GO) test -run '^$$' -bench 'BenchmarkDisabled' -benchtime 1000x ./internal/obs >> benchguard.out || (cat benchguard.out; rm -f benchguard.out; exit 1)
	$(GO) run ./cmd/benchguard -baseline $(BENCH_BASELINE) -only 'MeasureKernelScratch$$' \
		-zeroalloc 'BenchmarkMeasureKernelScratch$$|BenchmarkDisabled' \
		-budget $(BENCH_GUARD_BUDGET) -noise $(BENCH_GUARD_NOISE) < benchguard.out
	@rm -f benchguard.out

# Tier-1 gate plus a perf smoke: vet, race-enabled tests, and one pass of
# the Figure 9 matrix benchmark so fast-path breakage (correctness or a
# gross slowdown) is caught before it lands.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run '^$$' -bench BenchmarkFig09MatrixCore2Duo10cm -benchtime=1x .

# End-to-end smoke of the campaign daemon: builds savatd, starts it on
# a random port, submits a 3×3 campaign over HTTP, cancels it mid-run,
# resubmits to resume from the checkpoint, streams the events, diffs
# the served matrix bit-for-bit against a direct in-process run, then
# SIGKILLs the daemon mid-campaign and proves the restart resumes from
# the durable cell store.
daemon-smoke:
	$(GO) run ./cmd/daemonsmoke

# Short coverage-guided run of every fuzz target (FUZZTIME each); the
# committed seed corpora additionally run as plain unit tests in `test`.
fuzz-smoke:
	@set -e; for spec in $(FUZZ_TARGETS); do \
		pkg=$${spec%%:*}; target=$${spec##*:}; \
		echo "fuzz $$pkg $$target"; \
		$(GO) test $$pkg -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZTIME); \
	done
