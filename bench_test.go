// Benchmark harness: one testing.B benchmark per evaluation table and
// figure of the paper, plus the design-choice ablations DESIGN.md calls
// out. Each benchmark regenerates its experiment (in the fast
// configuration) and reports shape-agreement metrics against the published
// values via b.ReportMetric; cmd/reproduce prints the full rows.
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/activity"
	"repro/internal/arena"
	"repro/internal/cluster"
	"repro/internal/emsim"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/paperdata"
	"repro/internal/report"
	"repro/internal/savat"
	"repro/internal/specan"
	"repro/internal/stats"
	"repro/internal/store"
)

// benchRepeats keeps the matrix benchmarks tractable; cmd/reproduce runs
// the paper's full 10-campaign protocol.
const benchRepeats = 1

var (
	matrixOnce  sync.Mutex
	matrixCache = map[string]*savat.MatrixStats{}
)

// benchMatrix measures (once per process) the matrix for one published
// experiment in the fast configuration.
func benchMatrix(b *testing.B, id string) (*savat.MatrixStats, paperdata.Experiment) {
	b.Helper()
	exp, err := paperdata.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	matrixOnce.Lock()
	defer matrixOnce.Unlock()
	if got, ok := matrixCache[id]; ok {
		return got, exp
	}
	mc, err := machine.ConfigByName(exp.Machine)
	if err != nil {
		b.Fatal(err)
	}
	cfg := savat.FastConfig()
	cfg.Distance = exp.Distance
	opts := savat.DefaultCampaignOptions()
	opts.Repeats = benchRepeats
	res, err := savat.RunCampaign(mc, cfg, opts)
	if err != nil {
		b.Fatal(err)
	}
	matrixCache[id] = res
	return res, exp
}

// reportShape attaches paper-agreement metrics to a matrix benchmark.
func reportShape(b *testing.B, res *savat.MatrixStats, exp paperdata.Experiment) {
	b.Helper()
	paper := exp.Matrix()
	rho, err := stats.SpearmanRank(res.Mean.Flat(), paper.Flat())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rho, "spearman")
	var logSum float64
	var n int
	for i := range res.Mean.Vals {
		for j := range res.Mean.Vals[i] {
			if res.Mean.Vals[i][j] > 0 && paper.Vals[i][j] > 0 {
				logSum += math.Abs(math.Log10(res.Mean.Vals[i][j] / paper.Vals[i][j]))
				n++
			}
		}
	}
	b.ReportMetric(math.Pow(10, logSum/float64(n)), "cell-ratio")
	b.ReportMetric(float64(len(res.Mean.DiagonalViolations(0.20))), "diag-violations")
}

func benchMatrixFigure(b *testing.B, id string) {
	for i := 0; i < b.N; i++ {
		matrixOnce.Lock()
		delete(matrixCache, id) // measure the real cost each iteration
		matrixOnce.Unlock()
		res, exp := benchMatrix(b, id)
		reportShape(b, res, exp)
	}
}

// BenchmarkFig09MatrixCore2Duo10cm regenerates the paper's Figure 9/10/11
// data: the 11×11 SAVAT matrix of the Core 2 Duo at 10 cm.
func BenchmarkFig09MatrixCore2Duo10cm(b *testing.B) { benchMatrixFigure(b, "fig9") }

// BenchmarkFig12MatrixPentium3M10cm regenerates Figures 12/13.
func BenchmarkFig12MatrixPentium3M10cm(b *testing.B) { benchMatrixFigure(b, "fig12") }

// BenchmarkFig14MatrixTurionX210cm regenerates Figures 14/15.
func BenchmarkFig14MatrixTurionX210cm(b *testing.B) { benchMatrixFigure(b, "fig14") }

// BenchmarkFig17Matrix50cm regenerates Figure 17 (Core 2 Duo, 50 cm).
func BenchmarkFig17Matrix50cm(b *testing.B) { benchMatrixFigure(b, "fig17") }

// BenchmarkFig18Matrix100cm regenerates Figure 18 (Core 2 Duo, 100 cm).
func BenchmarkFig18Matrix100cm(b *testing.B) { benchMatrixFigure(b, "fig18") }

// benchMeasureKernelScratch times the scratch-reusing streaming fast
// path — the per-cell hot path of every campaign — with the
// observability registry on or off. The Off variant is the perf
// contract cmd/benchguard enforces in CI: instrumentation left in the
// pipeline must cost one atomic load per site when disabled, so its
// ns/op must stay within 1% of the recorded baseline — and, with the
// per-worker arena installed exactly as campaign workers get it, the
// steady state must report 0 allocs/op (benchguard -zeroalloc).
func benchMeasureKernelScratch(b *testing.B, obsOn bool) {
	if obsOn {
		obs.Default.SetEnabled(true)
		defer func() {
			obs.Default.SetEnabled(false)
			obs.Default.Reset()
		}()
	}
	mc := machine.Core2Duo()
	cfg := savat.FastConfig()
	k, err := savat.BuildKernel(mc, savat.ADD, savat.LDM, cfg.Frequency)
	if err != nil {
		b.Fatal(err)
	}
	m := savat.NewMeasurer(mc, cfg, savat.WithArena(arena.New()))
	// One advancing rng across iterations: every measurement draws fresh
	// seeds, so every iteration is a synthesis-cache MISS and the full
	// synthesize-and-analyze path is what gets timed. (A fixed seed per
	// iteration would hit the scratch's synthesis-product cache from the
	// second iteration on — that path is BenchmarkMeasureKernelCached.)
	rng := rand.New(rand.NewSource(1))
	// Warm the working set before the timer: the first few measurements
	// carve the arena, grow the product-cache freelists, and build the
	// FFT plan; after that the path is allocation-free, which is what
	// the timed region asserts.
	for i := 0; i < 8; i++ {
		if _, err := m.MeasureKernel(k, rng); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MeasureKernel(k, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureKernelScratch is the disabled-observability hot path
// (the name predates the Measurer API; cmd/benchguard keys on it).
func BenchmarkMeasureKernelScratch(b *testing.B) { benchMeasureKernelScratch(b, false) }

// BenchmarkMeasureKernelScratchObsOn is the same path with metrics
// recording, bounding what -metrics-addr costs a campaign.
func BenchmarkMeasureKernelScratchObsOn(b *testing.B) { benchMeasureKernelScratch(b, true) }

// BenchmarkMeasureKernelCached times the synthesis-cache HIT path: the
// same per-stage seeds every iteration, so after the first call the
// envelope and noise products come from the scratch's cache and only
// the per-cell work (alternation lookup, coefficient combine, band
// power) remains — the cost of a campaign cell whose row-mates already
// synthesized, i.e. 10 of every 11 Figure 9 cells.
func BenchmarkMeasureKernelCached(b *testing.B) {
	mc := machine.Core2Duo()
	cfg := savat.FastConfig()
	k, err := savat.BuildKernel(mc, savat.ADD, savat.LDM, cfg.Frequency)
	if err != nil {
		b.Fatal(err)
	}
	m := savat.NewMeasurer(mc, cfg)
	seeds := savat.CampaignSeeds(1, savat.ADD, 0)
	if _, err := m.MeasureKernelSeeds(k, seeds); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MeasureKernelSeeds(k, seeds); err != nil {
			b.Fatal(err)
		}
	}
}

// spectrumBench measures one pair and reports the Figure 7/8 observables:
// peak shift from the intended 80 kHz and the peak-to-floor ratio.
func spectrumBench(b *testing.B, a, ev savat.Event) {
	mc := machine.Core2Duo()
	cfg := savat.FastConfig()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		m, err := savat.NewMeasurer(mc, cfg).Measure(a, ev, rng)
		if err != nil {
			b.Fatal(err)
		}
		pf, ppsd, err := m.Trace.Peak(cfg.Frequency, cfg.BandHalfWidth)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pf-cfg.Frequency, "peak-shift-Hz")
		b.ReportMetric(ppsd/m.Trace.FloorPSD, "peak-over-floor")
		b.ReportMetric(m.ZJ(), "zJ")
	}
}

// BenchmarkFig07SpectrumADDLDM regenerates the ADD/LDM spectrum: a strong
// line, shifted a few hundred Hz below 80 kHz, well above the floor.
func BenchmarkFig07SpectrumADDLDM(b *testing.B) { spectrumBench(b, savat.ADD, savat.LDM) }

// BenchmarkFig08SpectrumADDADD regenerates the ADD/ADD floor spectrum.
func BenchmarkFig08SpectrumADDADD(b *testing.B) { spectrumBench(b, savat.ADD, savat.ADD) }

// BenchmarkFig10Heatmap renders the Figure 10 gray-scale visualization.
func BenchmarkFig10Heatmap(b *testing.B) {
	res, _ := benchMatrix(b, "fig9")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := report.Heatmap(res.Mean); len(out) == 0 {
			b.Fatal("empty heatmap")
		}
	}
}

// selectedPairsBench renders a Figure 11/13/15-style bar chart and reports
// its rank agreement with the published chart values.
func selectedPairsBench(b *testing.B, id string) {
	res, exp := benchMatrix(b, id)
	paper := exp.Matrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := report.SelectedPairsChart("", res.Mean, paperdata.SelectedPairs)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
		var got, want []float64
		for _, p := range paperdata.SelectedPairs {
			got = append(got, res.Mean.MustAt(p[0], p[1]))
			want = append(want, paper.MustAt(p[0], p[1]))
		}
		rho, err := stats.SpearmanRank(got, want)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rho, "spearman")
	}
}

// BenchmarkFig11SelectedPairs regenerates the Figure 11 bars (Core 2 Duo).
func BenchmarkFig11SelectedPairs(b *testing.B) { selectedPairsBench(b, "fig9") }

// BenchmarkFig13SelectedPairs regenerates the Figure 13 bars (Pentium 3 M).
func BenchmarkFig13SelectedPairs(b *testing.B) { selectedPairsBench(b, "fig12") }

// BenchmarkFig15SelectedPairs regenerates the Figure 15 bars (Turion X2).
func BenchmarkFig15SelectedPairs(b *testing.B) { selectedPairsBench(b, "fig14") }

// BenchmarkFig16DistanceBars regenerates the Figure 16 series: selected
// pairs at 50 cm and 100 cm, reporting the 50→100 cm drop of ADD/LDM
// (paper: small) and the off-chip-over-L2 dominance at 50 cm.
func BenchmarkFig16DistanceBars(b *testing.B) {
	m50, _ := benchMatrix(b, "fig17")
	m100, _ := benchMatrix(b, "fig18")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drop := m50.Mean.MustAt(savat.ADD, savat.LDM) / m100.Mean.MustAt(savat.ADD, savat.LDM)
		dom := m50.Mean.MustAt(savat.ADD, savat.LDM) / m50.Mean.MustAt(savat.ADD, savat.LDL2)
		b.ReportMetric(drop, "drop-50-to-100")
		b.ReportMetric(dom, "offchip-over-l2")
	}
}

// BenchmarkRepeatability measures the Section V σ/mean statistic over a
// representative cell set with the paper's 10 repetitions.
func BenchmarkRepeatability(b *testing.B) {
	mc := machine.Core2Duo()
	cfg := savat.FastConfig()
	pairs := [][2]savat.Event{{savat.ADD, savat.LDM}, {savat.LDL2, savat.STL2}, {savat.ADD, savat.DIV}}
	for i := 0; i < b.N; i++ {
		total := 0.0
		for _, p := range pairs {
			_, sum, err := savat.NewMeasurer(mc, cfg).MeasurePair(p[0], p[1], 10, 1)
			if err != nil {
				b.Fatal(err)
			}
			total += sum.RelStdDev()
		}
		b.ReportMetric(total/float64(len(pairs)), "sigma-over-mean")
	}
}

// BenchmarkNaiveVsAlternation contrasts the Section III error analyses:
// the naive methodology's relative error against the alternation
// methodology's σ/mean for the same same-latency pair.
func BenchmarkNaiveVsAlternation(b *testing.B) {
	mc := machine.Core2Duo()
	for i := 0; i < b.N; i++ {
		res, err := savat.NaiveMeasure(mc, savat.ADD, savat.MUL, 0.10, savat.DefaultScopeConfig(), 6, 3)
		if err != nil {
			b.Fatal(err)
		}
		_, sum, err := savat.NewMeasurer(mc, savat.FastConfig()).MeasurePair(savat.ADD, savat.MUL, 6, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanRelError(), "naive-rel-err")
		b.ReportMetric(sum.RelStdDev(), "alternation-rel-err")
	}
}

// BenchmarkClusterGroups clusters the measured Figure 9 matrix and reports
// whether the k=4 cut recovers the paper's Section V group count of
// {off-chip}, {L2}, {arith+L1}, {DIV}.
func BenchmarkClusterGroups(b *testing.B) {
	res, _ := benchMatrix(b, "fig9")
	want := [][]savat.Event{
		{savat.LDM, savat.STM},
		{savat.LDL2, savat.STL2},
		{savat.LDL1, savat.STL1, savat.NOI, savat.ADD, savat.SUB, savat.MUL},
		{savat.DIV},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := cluster.Cluster(res.Mean)
		if err != nil {
			b.Fatal(err)
		}
		groups, err := d.CutK(4)
		if err != nil {
			b.Fatal(err)
		}
		match := 0.0
		if groupsEqual(groups, want) {
			match = 1
		}
		sil, err := cluster.Silhouette(res.Mean, groups)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(match, "paper-groups-recovered")
		b.ReportMetric(sil, "silhouette")
	}
}

func groupsEqual(a, b [][]savat.Event) bool {
	key := func(gs [][]savat.Event) map[string]bool {
		out := map[string]bool{}
		for _, g := range gs {
			set := make(map[savat.Event]bool, len(g))
			for _, e := range g {
				set[e] = true
			}
			k := ""
			for _, e := range savat.Events() {
				if set[e] {
					k += e.String() + ","
				}
			}
			out[k] = true
		}
		return out
	}
	ka, kb := key(a), key(b)
	if len(ka) != len(kb) {
		return false
	}
	for k := range ka {
		if !kb[k] {
			return false
		}
	}
	return true
}

// measureCoherent mirrors the measurement pipeline but sums the coherence
// groups into one stream before analysis — the combining-model ablation.
func measureCoherent(b *testing.B, mc machine.Config, a, ev savat.Event, cfg savat.Config, seed int64) float64 {
	b.Helper()
	k, err := savat.BuildKernel(mc, a, ev, cfg.Frequency)
	if err != nil {
		b.Fatal(err)
	}
	alt, err := k.Alternation(mc, cfg.WarmupPeriods, cfg.MeasurePeriods)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	rad, err := emsim.NewRadiator(mc.Sources, cfg.Distance, mc.AsymmetrySourceAmp, rng)
	if err != nil {
		b.Fatal(err)
	}
	spec := emsim.Alternation{
		Rates:       [2]activity.Vector{alt.PhaseStats[0].MeanRates, alt.PhaseStats[1].MeanRates},
		HalfSeconds: alt.HalfSeconds,
	}
	n := int(cfg.Duration * cfg.SampleRate)
	x, err := rad.Synthesize(spec, cfg.SampleRate, n, cfg.Jitter, rng)
	if err != nil {
		b.Fatal(err)
	}
	if err := cfg.Environment.Apply(x, cfg.SampleRate, rng); err != nil {
		b.Fatal(err)
	}
	an, err := specan.New(cfg.Analyzer)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := an.Analyze(x, cfg.SampleRate)
	if err != nil {
		b.Fatal(err)
	}
	p, err := tr.BandPower(cfg.Frequency, cfg.BandHalfWidth)
	if err != nil {
		b.Fatal(err)
	}
	return p / alt.PairsPerSecond()
}

// BenchmarkAblationCoherentCombining quantifies why the EM model combines
// coherence groups in power: with a coherent scalar sum, the LDM/LDL2
// additivity relation of Figure 9 (LDM/LDL2 ≈ LDM/ADD + LDL2/ADD − floor)
// becomes seed-dependent, collapsing or inflating with the random relative
// phase. Reported: the additivity ratio for both models (incoherent ≈ 1)
// and the coherent model's spread across phase draws.
func BenchmarkAblationCoherentCombining(b *testing.B) {
	mc := machine.Core2Duo()
	cfg := savat.FastConfig()
	for i := 0; i < b.N; i++ {
		get := func(a, ev savat.Event) float64 {
			rng := rand.New(rand.NewSource(42))
			m, err := savat.NewMeasurer(mc, cfg).Measure(a, ev, rng)
			if err != nil {
				b.Fatal(err)
			}
			return m.SAVAT
		}
		floor := get(savat.ADD, savat.ADD)
		sum := get(savat.ADD, savat.LDM) + get(savat.ADD, savat.LDL2) - floor
		incoherent := get(savat.LDM, savat.LDL2) / sum
		b.ReportMetric(incoherent, "incoherent-additivity")

		// Coherent scalar sum: the off-chip and L2 amplitudes sit on the
		// two sides of the difference and partially cancel, so the
		// additivity ratio collapses well below 1.
		coh := 0.0
		for seed := int64(1); seed <= 5; seed++ {
			coh += measureCoherent(b, mc, savat.LDM, savat.LDL2, cfg, seed) / sum
		}
		b.ReportMetric(coh/5, "coherent-additivity")
	}
}

// BenchmarkAblationNearFieldOnly removes the far-field and conducted
// coupling terms: at 50 cm the off-chip signal then collapses to the
// floor, destroying the Figure 17 ordering. Reported: ADD/LDM over the
// floor at 50 cm with and without the far-field terms.
func BenchmarkAblationNearFieldOnly(b *testing.B) {
	full := machine.Core2Duo()
	nearOnly := machine.Core2Duo()
	for c := range nearOnly.Sources {
		nearOnly.Sources[c].Far = 0
		nearOnly.Sources[c].Diffuse = 0
	}
	cfg := savat.FastConfig()
	cfg.Distance = 0.50
	for i := 0; i < b.N; i++ {
		// Floor-adjusted excess: subtract the A/A floor rescaled by the
		// per-pair loop count (the floor is band noise divided by
		// pairs/second, so it scales as 1/LoopCount).
		excess := func(mc machine.Config) float64 {
			rng := rand.New(rand.NewSource(7))
			pair, err := savat.NewMeasurer(mc, cfg).Measure(savat.ADD, savat.LDM, rng)
			if err != nil {
				b.Fatal(err)
			}
			rng = rand.New(rand.NewSource(7))
			aa, err := savat.NewMeasurer(mc, cfg).Measure(savat.ADD, savat.ADD, rng)
			if err != nil {
				b.Fatal(err)
			}
			return (pair.SAVAT - aa.SAVAT*float64(aa.LoopCount)/float64(pair.LoopCount)) * 1e21
		}
		b.ReportMetric(excess(full), "full-ldm-excess-zJ-50cm")
		b.ReportMetric(excess(nearOnly), "nearonly-ldm-excess-zJ-50cm")
	}
}

// BenchmarkAblationNoAsymmetry removes the loop-half code-placement
// asymmetry: the A/A diagonal then collapses toward the pure noise floor,
// losing part of the paper's Figure 8 structure. Reported: the ADD/ADD
// SAVAT with and without the asymmetry source.
func BenchmarkAblationNoAsymmetry(b *testing.B) {
	withAsym := machine.Core2Duo()
	without := machine.Core2Duo()
	without.AsymmetrySourceAmp = 0
	quiet := savat.FastConfig()
	quiet.Environment = noise.Quiet() // isolate the asymmetry contribution
	for i := 0; i < b.N; i++ {
		get := func(mc machine.Config) float64 {
			rng := rand.New(rand.NewSource(3))
			m, err := savat.NewMeasurer(mc, quiet).Measure(savat.ADD, savat.ADD, rng)
			if err != nil {
				b.Fatal(err)
			}
			return m.ZJ()
		}
		b.ReportMetric(get(withAsym), "zJ-with-asymmetry")
		b.ReportMetric(get(without), "zJ-without-asymmetry")
	}
}

// BenchmarkAblationSweepStride compares the paper's 4-byte sweep offset
// with a full-line 64-byte stride: the line stride makes every access of a
// memory row a miss, slowing its loop an order of magnitude and distorting
// the diagonal ratios. Reported: LDM loop counts for both strides.
func BenchmarkAblationSweepStride(b *testing.B) {
	mc := machine.Core2Duo()
	for i := 0; i < b.N; i++ {
		k4, err := savat.BuildKernelStride(mc, savat.LDM, savat.LDM, 80e3, 4)
		if err != nil {
			b.Fatal(err)
		}
		k64, err := savat.BuildKernelStride(mc, savat.LDM, savat.LDM, 80e3, 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(k4.LoopCount), "loopcount-stride4")
		b.ReportMetric(float64(k64.LoopCount), "loopcount-stride64")
		b.ReportMetric(float64(k4.LoopCount)/float64(k64.LoopCount), "slowdown")
	}
}

// BenchmarkSequenceAdditivity regenerates the Section III sequence
// analysis: a two-instruction A/B sequence difference measured directly
// versus the paper's sum-of-singles estimate.
func BenchmarkSequenceAdditivity(b *testing.B) {
	mc := machine.Core2Duo()
	cfg := savat.FastConfig()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		meas, est, err := savat.SequenceAdditivity(mc,
			savat.Sequence{savat.LDM, savat.DIV}, savat.Sequence{savat.ADD, savat.ADD}, cfg, rng)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meas*1e21, "measured-zJ")
		b.ReportMetric(est*1e21, "estimate-zJ")
		b.ReportMetric(meas/est, "additivity-ratio")
	}
}

// BenchmarkExtensionBranchEvents regenerates the Section VII extension:
// branch-prediction hit/miss SAVAT relative to the same-event floor.
func BenchmarkExtensionBranchEvents(b *testing.B) {
	mc := machine.Core2Duo()
	cfg := savat.FastConfig()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		pair, err := savat.NewMeasurer(mc, cfg).Measure(savat.BPH, savat.BPM, rng)
		if err != nil {
			b.Fatal(err)
		}
		rng = rand.New(rand.NewSource(1))
		floor, err := savat.NewMeasurer(mc, cfg).Measure(savat.BPH, savat.BPH, rng)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pair.ZJ(), "bph-bpm-zJ")
		b.ReportMetric(floor.ZJ(), "bph-bph-floor-zJ")
	}
}

// BenchmarkAnalyticCrossCheck validates the numeric pipeline against the
// closed-form rectangular-wave fundamental (savat.Predict): in a quiet
// environment the two must agree. Reported: measured/analytic ratio for a
// bus-dominated pair (expect ≈1.0).
func BenchmarkAnalyticCrossCheck(b *testing.B) {
	mc := machine.Core2Duo()
	mc.AmplitudeNoiseStd = 0
	cfg := savat.FastConfig()
	cfg.Environment = noise.Environment{}
	cfg.Jitter = emsim.Jitter{FreqOffset: 0.001}
	cfg.Analyzer.FloorPSD = 0
	for i := 0; i < b.N; i++ {
		k, err := savat.BuildKernel(mc, savat.ADD, savat.LDM, cfg.Frequency)
		if err != nil {
			b.Fatal(err)
		}
		want, err := savat.PredictKernelAt(mc, k, cfg.Distance)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(13))
		m, err := savat.NewMeasurer(mc, cfg).MeasureKernel(k, rng)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.SAVAT/want, "measured-over-analytic")
	}
}

// --- Durable cell store (internal/store) -----------------------------
//
// The store benchmarks quantify the claims behind adopting the
// append-only segment log as the default cache backend: write-behind
// batching amortizes the disk to a fraction of a syscall per Put where
// the legacy JSON-dir layer pays at least four (create, write, close,
// rename) for every cell, and a 10⁵-record log reopens (replay +
// index rebuild) in well under a second.

// BenchmarkStorePut measures the store's Put throughput including the
// final Sync, reporting observed write-path syscalls per record.
func BenchmarkStorePut(b *testing.B) {
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	val := store.EncodeFloat64(42.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Put(engine.Key(fmt.Sprintf("bench-cell-%d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	stats := st.Stats()
	b.ReportMetric(float64(stats.Syscalls)/float64(b.N), "syscalls/op")
	b.ReportMetric(float64(stats.BatchedRecords)/float64(stats.Batches), "records/batch")
}

// BenchmarkJSONCachePut is the legacy baseline: one atomically-renamed
// JSON file per Put (≥ 4 write-path syscalls each, by construction).
func BenchmarkJSONCachePut(b *testing.B) {
	cache, err := engine.NewCache(64, b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer cache.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.Put(engine.Key(fmt.Sprintf("bench-cell-%d", i)), 42.5)
	}
	b.StopTimer()
	b.ReportMetric(4, "syscalls/op")
}

// benchCampaignWithCache runs the small benchmark campaign against a
// cold cache and reports cells per second.
func benchCampaignWithCache(b *testing.B, cache *engine.Cache) {
	b.Helper()
	mc := machine.Core2Duo()
	cfg := savat.FastConfig()
	cfg.Duration = 1.0 / 32
	opts := savat.CampaignOptions{
		Events:  []savat.Event{savat.ADD, savat.LDM, savat.DIV, savat.NOI},
		Repeats: 2, Seed: 3,
		Cache: cache,
	}
	for i := 0; i < b.N; i++ {
		res, err := savat.RunCampaign(mc, cfg, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Engine.CellsPerSecond(), "cells/s")
		}
	}
}

// BenchmarkCampaignStoreBacked runs a campaign whose cells persist
// through the store-backed cache (the savatd / -cache-backend=store
// write path).
func BenchmarkCampaignStoreBacked(b *testing.B) {
	cache, err := engine.NewStoreCache(engine.DefaultCacheCapacity, b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer cache.Close()
	benchCampaignWithCache(b, cache)
}

// BenchmarkCampaignJSONCache is the same campaign over the legacy
// one-file-per-cell layer.
func BenchmarkCampaignJSONCache(b *testing.B) {
	cache, err := engine.NewCache(engine.DefaultCacheCapacity, b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer cache.Close()
	benchCampaignWithCache(b, cache)
}

// BenchmarkStoreReopen100k measures cold-open replay of a 10⁵-record
// log — the acceptance bound is well under a second.
func BenchmarkStoreReopen100k(b *testing.B) {
	dir := b.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	val := store.EncodeFloat64(1.5)
	for i := 0; i < 100_000; i++ {
		if err := st.Put(engine.Key(fmt.Sprintf("reopen-cell-%d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if st.Len() != 100_000 {
			b.Fatalf("reopened %d records", st.Len())
		}
		b.StopTimer()
		st.Close()
		b.StartTimer()
	}
}
