// Command benchjson turns `go test -bench` output into a
// machine-readable JSON snapshot, so benchmark trajectories can be
// tracked across commits with ordinary tooling instead of eyeballing
// test output.
//
//	go test -run '^$' -bench . -benchtime=1x ./... > bench.out
//	benchjson -out BENCH_20260806.json < bench.out
//
// Every reported metric is captured — ns/op, B/op, allocs/op, and the
// custom b.ReportMetric units the figure benchmarks emit (cell-ratio,
// spearman, diag-violations, ...). `make bench-json` wraps the whole
// flow and names the file BENCH_<YYYYMMDD>.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Bench is one benchmark result line.
type Bench struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the snapshot written to disk.
type File struct {
	Date       string  `json:"date"` // YYYYMMDD
	GOOS       string  `json:"goos,omitempty"`
	GOARCH     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

// parse reads `go test -bench` output and collects every benchmark
// line, tracking the `pkg:` header lines so each result carries its
// package.
func parse(r io.Reader) (*File, error) {
	f := &File{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			f.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			f.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			f.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			b.Package = pkg
			f.Benchmarks = append(f.Benchmarks, b)
		}
	}
	return f, sc.Err()
}

// parseLine splits one result line — name, iteration count, then
// (value, unit) pairs.
func parseLine(line string) (Bench, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Bench{}, fmt.Errorf("benchjson: malformed benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, fmt.Errorf("benchjson: iteration count in %q: %w", line, err)
	}
	b := Bench{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, fmt.Errorf("benchjson: metric value in %q: %w", line, err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

func main() {
	out := flag.String("out", "", "output file (default BENCH_<YYYYMMDD>.json)")
	date := flag.String("date", time.Now().Format("20060102"), "snapshot date stamp (YYYYMMDD)")
	flag.Parse()
	if err := run(*out, *date); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, date string) error {
	f, err := parse(os.Stdin)
	if err != nil {
		return err
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output in)")
	}
	f.Date = date
	if out == "" {
		out = "BENCH_" + date + ".json"
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(f.Benchmarks), out)
	return nil
}
