// Command benchjson turns `go test -bench` output into a
// machine-readable JSON snapshot, so benchmark trajectories can be
// tracked across commits with ordinary tooling instead of eyeballing
// test output.
//
//	go test -run '^$' -bench . -benchtime=2x -count=3 ./... > bench.out
//	benchjson -out BENCH_20260806.json < bench.out
//
// Every reported metric is captured — ns/op, B/op, allocs/op, and the
// custom b.ReportMetric units the figure benchmarks emit (cell-ratio,
// spearman, diag-violations, ...). Result lines are aggregated per
// benchmark: with -count > 1 each metric is recorded as its cross-run
// mean plus an unbiased sample variance, so a snapshot says how noisy
// its numbers are. `make bench-json` wraps the whole flow and names
// the file BENCH_<YYYYMMDD>.json. The snapshots feed cmd/benchguard,
// which fails a run that regresses past a baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/benchfmt"
)

func main() {
	out := flag.String("out", "", "output file (default BENCH_<YYYYMMDD>.json)")
	date := flag.String("date", time.Now().Format("20060102"), "snapshot date stamp (YYYYMMDD)")
	flag.Parse()
	if err := run(*out, *date); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, date string) error {
	f, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		return err
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output in)")
	}
	// -count runs produce one line per run; record each benchmark once,
	// as its mean plus cross-run variance, so the snapshot carries noise
	// information instead of a single arbitrary sample.
	f.Aggregate()
	f.Date = date
	if out == "" {
		out = "BENCH_" + date + ".json"
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(f.Benchmarks), out)
	return nil
}
