package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baselineJSON = `{
  "date": "20260806",
  "benchmarks": [
    {"name": "BenchmarkMeasureKernelScratch", "iterations": 20, "metrics": {"ns/op": 1000000}},
    {"name": "BenchmarkOther", "iterations": 5, "metrics": {"ns/op": 500000}}
  ]
}
`

func writeBaseline(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(p, []byte(baselineJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func guard(t *testing.T, benchOut, only string, budget, noise float64) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(strings.NewReader(benchOut), &out, writeBaseline(t), budget, noise, only, "")
	return out.String(), err
}

func TestWithinBudgetPasses(t *testing.T) {
	out, err := guard(t, "BenchmarkMeasureKernelScratch 20 1004000 ns/op\n", "", 0.01, 0)
	if err != nil {
		t.Fatalf("0.4%% over baseline rejected: %v\n%s", err, out)
	}
	if !strings.Contains(out, "1 benchmarks within budget") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRegressionFails(t *testing.T) {
	out, err := guard(t, "BenchmarkMeasureKernelScratch 20 1020000 ns/op\n", "", 0.01, 0)
	if err == nil {
		t.Fatalf("2%% regression accepted:\n%s", out)
	}
	if !strings.Contains(out, "FAIL") {
		t.Errorf("output:\n%s", out)
	}
}

func TestNoiseSlackForgives(t *testing.T) {
	// The same 2% regression passes once run-variance slack is granted.
	if out, err := guard(t, "BenchmarkMeasureKernelScratch 20 1020000 ns/op\n", "", 0.01, 0.25); err != nil {
		t.Fatalf("regression within noise slack rejected: %v\n%s", err, out)
	}
}

func TestOnlyFilterAndMissingBaseline(t *testing.T) {
	benchOut := "BenchmarkMeasureKernelScratch 20 1000000 ns/op\n" +
		"BenchmarkBrandNew 3 9999999999 ns/op\n"
	out, err := guard(t, benchOut, "", 0.01, 0)
	if err != nil {
		t.Fatalf("unrelated new benchmark failed the guard: %v\n%s", err, out)
	}
	if !strings.Contains(out, "SKIP BenchmarkBrandNew") {
		t.Errorf("missing-baseline benchmark not reported:\n%s", out)
	}

	// -only matching nothing is an error, not a silent pass.
	if _, err := guard(t, benchOut, "NoSuchBenchmark", 0.01, 0); err == nil {
		t.Error("empty guard set accepted")
	}
}

func TestRequiresBaselineFlag(t *testing.T) {
	if err := run(strings.NewReader(""), &strings.Builder{}, "", 0.01, 0, "", ""); err == nil {
		t.Error("missing -baseline accepted")
	}
}

func TestZeroAllocAssertion(t *testing.T) {
	zero := func(benchOut string) (string, error) {
		var out strings.Builder
		err := run(strings.NewReader(benchOut), &out, writeBaseline(t), 0.01, 0,
			"MeasureKernelScratch$", "Disabled")
		return out.String(), err
	}
	pass := "BenchmarkMeasureKernelScratch 20 1000000 ns/op\n" +
		"BenchmarkDisabledCounter 1000 3 ns/op 0 B/op 0 allocs/op\n"
	if out, err := zero(pass); err != nil {
		t.Fatalf("zero-alloc benchmark rejected: %v\n%s", err, out)
	}

	// A nonzero allocation count fails even though ns/op is fine.
	leak := "BenchmarkMeasureKernelScratch 20 1000000 ns/op\n" +
		"BenchmarkDisabledCounter 1 3527 ns/op 464 B/op 7 allocs/op\n"
	out, err := zero(leak)
	if err == nil {
		t.Fatalf("7 allocs/op accepted on a zero-alloc site:\n%s", out)
	}
	if !strings.Contains(out, "want 0") {
		t.Errorf("output:\n%s", out)
	}

	// Dropping b.ReportAllocs (no allocs/op metric) cannot disarm the guard.
	silent := "BenchmarkMeasureKernelScratch 20 1000000 ns/op\n" +
		"BenchmarkDisabledCounter 1000 3 ns/op\n"
	if out, err := zero(silent); err == nil {
		t.Fatalf("missing allocs/op metric accepted on a zero-alloc site:\n%s", out)
	}
}
