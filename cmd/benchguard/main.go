// Command benchguard compares a `go test -bench` run on stdin against a
// recorded benchjson baseline and fails when a benchmark's ns/op
// regresses past its budget, so performance contracts — like the
// measurement pipeline's "disabled observability costs under 1%" — are
// enforced by CI instead of by eyeballing.
//
//	go test -run '^$' -bench MeasureKernelScratch -benchtime 20x . > bench.out
//	benchguard -baseline BENCH_20260806.json -only MeasureKernelScratch < bench.out
//
// A current value passes while
//
//	current <= baseline * (1 + budget + noise)
//
// -budget is the performance budget under guard (default 1%); -noise is
// extra multiplicative slack for run-to-run and machine-to-machine
// variance (CI runners are not the machine that recorded the baseline).
// Benchmarks missing from the baseline are reported and skipped; a run
// in which -only matches nothing fails, so a renamed benchmark cannot
// silently disarm the guard.
//
// -zeroalloc takes a second regexp of benchmarks that must report
// exactly 0 allocs/op in the current run. Allocation counts are
// deterministic, so no baseline or slack is involved; a matching
// benchmark that reports no allocs/op metric at all fails too, so
// dropping b.ReportAllocs() cannot disarm the assertion. This is how
// the "disabled observability sites allocate nothing" contract is
// enforced against harness artifacts as well as real regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"

	"repro/internal/benchfmt"
)

func main() {
	var (
		baseline  = flag.String("baseline", "", "benchjson snapshot to compare against (required)")
		budget    = flag.Float64("budget", 0.01, "allowed fractional ns/op regression past the baseline")
		noise     = flag.Float64("noise", 0.25, "extra fractional slack for run and machine variance")
		only      = flag.String("only", "", "regexp restricting which benchmarks are guarded (default all)")
		zeroalloc = flag.String("zeroalloc", "", "regexp of benchmarks that must report 0 allocs/op")
	)
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *baseline, *budget, *noise, *only, *zeroalloc); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer, baseline string, budget, noise float64, only, zeroalloc string) error {
	if baseline == "" {
		return fmt.Errorf("-baseline is required")
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		return err
	}
	var base benchfmt.File
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baseline, err)
	}
	cur, err := benchfmt.Parse(in)
	if err != nil {
		return err
	}
	// A -count run yields one line per repetition; guard the mean, like
	// the baselines record it.
	cur.Aggregate()
	var keep, mustZero *regexp.Regexp
	if only != "" {
		if keep, err = regexp.Compile(only); err != nil {
			return fmt.Errorf("-only: %w", err)
		}
	}
	if zeroalloc != "" {
		if mustZero, err = regexp.Compile(zeroalloc); err != nil {
			return fmt.Errorf("-zeroalloc: %w", err)
		}
	}

	limitFactor := 1 + budget + noise
	compared, failed := 0, 0
	fmt.Fprintf(out, "benchguard: baseline %s (%s), limit = baseline × %.3f\n", baseline, base.Date, limitFactor)
	for _, b := range cur.Benchmarks {
		if mustZero != nil && mustZero.MatchString(b.Name) {
			compared++
			allocs, ok := b.Metrics["allocs/op"]
			switch {
			case !ok:
				failed++
				fmt.Fprintf(out, "  FAIL %-45s reports no allocs/op (missing b.ReportAllocs?)\n", b.Name)
			case allocs != 0:
				failed++
				fmt.Fprintf(out, "  FAIL %-45s %12.0f allocs/op, want 0\n", b.Name, allocs)
			default:
				fmt.Fprintf(out, "  ok   %-45s %12.0f allocs/op\n", b.Name, allocs)
			}
		}
		if keep != nil && !keep.MatchString(b.Name) {
			continue
		}
		curNS, ok := b.Metrics["ns/op"]
		if !ok {
			continue
		}
		ref, ok := base.Find(b.Name)
		if !ok {
			fmt.Fprintf(out, "  SKIP %-45s not in baseline (record a new snapshot)\n", b.Name)
			continue
		}
		baseNS := ref.Metrics["ns/op"]
		if baseNS <= 0 {
			fmt.Fprintf(out, "  SKIP %-45s baseline has no ns/op\n", b.Name)
			continue
		}
		compared++
		limit := baseNS * limitFactor
		verdict := "ok"
		if curNS > limit {
			verdict = "FAIL"
			failed++
		}
		fmt.Fprintf(out, "  %-4s %-45s %12.0f ns/op vs %12.0f ns/op baseline (%.3fx, limit %.3fx)\n",
			verdict, b.Name, curNS, baseNS, curNS/baseNS, limitFactor)
	}
	if compared == 0 {
		return fmt.Errorf("no benchmark on stdin matched the baseline (only=%q) — nothing was guarded", only)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d guarded benchmarks regressed past budget %.1f%% (+%.0f%% noise slack)",
			failed, compared, budget*100, noise*100)
	}
	fmt.Fprintf(out, "benchguard: %d benchmarks within budget\n", compared)
	return nil
}
