// Command savat measures pairwise SAVAT on a simulated case-study system.
//
// One pair:
//
//	savat -machine Core2Duo -pair ADD/LDM -repeats 10
//
// Full 11×11 matrix (Figure 9 style):
//
//	savat -machine Core2Duo -distance 0.10 -matrix -format table
//	savat -machine Pentium3M -matrix -format heatmap
//	savat -machine TurionX2 -matrix -format csv > turion.csv
//
// Long campaigns are resumable: -checkpoint persists finished cells and
// a re-run with the same flags continues where the previous one (or a
// Ctrl-C) left off; -cache-dir memoizes per-cell results across runs.
//
// Campaigns serialize: -emit-spec writes the savat.CampaignSpec the
// flags describe (the same JSON the savatd service accepts), and -spec
// runs a previously saved one:
//
//	savat -machine TurionX2 -distance 0.5 -emit-spec turion.json
//	savat -spec turion.json -matrix
//
// Side channels and countermeasures: -channel selects the measured
// channel (em, power, impedance), and repeatable -countermeasure flags
// build a protection chain. With a chain and no -pair/-matrix, savat
// runs the matched campaign pair (with and without the chain) and
// prints the countermeasure-effectiveness report:
//
//	savat -fast -repeats 2 -channel power -countermeasure noop-insert:0.1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cliconf"
	"repro/internal/engine"
	"repro/internal/paperdata"
	"repro/internal/report"
	"repro/internal/savat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "savat:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		cf         = cliconf.Register(flag.CommandLine, cliconf.All|cliconf.Spec|cliconf.CacheDir|cliconf.Countermeasure)
		pair       = flag.String("pair", "", "single pair to measure, e.g. ADD/LDM")
		matrix     = flag.Bool("matrix", false, "measure the full 11×11 matrix")
		format     = flag.String("format", "table", "matrix output: table, heatmap, csv, bars, stats")
		dumpKernel = flag.Bool("kernel", false, "with -pair: print the generated alternation kernel instead of measuring")
		checkpoint = flag.String("checkpoint", "", "with -matrix: checkpoint file for resumable campaigns")
	)
	flag.Parse()

	// -emit-spec serializes the campaign instead of running it.
	if emitted, err := cf.WriteEmittedSpec(); emitted || err != nil {
		return err
	}

	stopProf, err := cf.StartProfiles()
	if err != nil {
		return err
	}
	defer stopProf()

	// With -metrics-addr set, /progress serves the latest campaign event
	// (stats + health) cached by the monitor goroutine below.
	var lastEvent atomic.Value // engine.ProgressEvent
	stopObs, err := cf.StartObs(func() any { return lastEvent.Load() })
	if err != nil {
		return err
	}
	defer stopObs()

	// The spec — from the -spec file or implied by the setup flags — is
	// the single campaign description; everything below reads it.
	spec, err := cf.CampaignSpec()
	if err != nil {
		return err
	}
	mc, err := spec.MachineConfig()
	if err != nil {
		return err
	}
	cfg := spec.Config

	switch {
	case *pair != "" && *dumpKernel:
		a, b, err := parsePair(*pair)
		if err != nil {
			return err
		}
		k, err := savat.BuildKernel(mc, a, b, cfg.Frequency)
		if err != nil {
			return err
		}
		fmt.Printf("; %s %v/%v alternation kernel (Figure 4 structure)\n", mc.Name, a, b)
		fmt.Printf("; inst_loop_count = %d for %.0f kHz intended alternation\n", k.LoopCount, cfg.Frequency/1e3)
		fmt.Printf("; sweep arrays: A %s, B %s\n", arrayDesc(k.ArrayBytes[0]), arrayDesc(k.ArrayBytes[1]))
		for i, in := range k.Program {
			marker := ""
			if id, ok := k.PhaseAt[i]; ok {
				marker = fmt.Sprintf("   ; <- phase %c begins", 'A'+byte(id))
			}
			fmt.Printf("%4d: %s%s\n", i, in, marker)
		}
		return nil

	case *pair != "":
		a, b, err := parsePair(*pair)
		if err != nil {
			return err
		}
		vals, sum, err := savat.NewMeasurer(mc, cfg).MeasurePair(a, b, spec.Repeats, spec.Seed)
		if err != nil {
			return err
		}
		fmt.Printf("%s %v/%v at %.2f m, %.0f kHz intended alternation\n",
			mc.Name, a, b, cfg.Distance, cfg.Frequency/1e3)
		for i, v := range vals {
			fmt.Printf("  campaign %2d: %7.2f zJ\n", i+1, v*1e21)
		}
		fmt.Printf("  SAVAT = %.2f ± %.2f zJ (σ/mean = %.3f)\n",
			sum.Mean*1e21, sum.StdDev*1e21, sum.RelStdDev())
		return nil

	case *matrix:
		// Ctrl-C cancels the campaign; with -checkpoint the finished
		// cells are saved and the next identical run resumes from them.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()

		var opts savat.CampaignOptions
		opts.CheckpointPath = *checkpoint
		// The closer flushes a store-backed cache's write-behind buffer,
		// so even a Ctrl-C'd campaign keeps every measured cell.
		cache, closeCache, err := cf.OpenCache()
		if err != nil {
			return err
		}
		defer closeCache()
		opts.Cache = cache
		ch := make(chan engine.ProgressEvent, 64)
		opts.Monitor = ch
		var last engine.Stats
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ev := range ch {
				last = ev.Stats
				lastEvent.Store(ev)
				fmt.Fprintf(os.Stderr, "\rmeasuring %d/%d cells (%d cached)",
					ev.Stats.Done, ev.Stats.Total, ev.Stats.Cached)
			}
			fmt.Fprintln(os.Stderr)
		}()
		res, err := savat.RunSpecContext(ctx, spec, opts)
		wg.Wait()
		if err != nil {
			if *checkpoint != "" && ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "interrupted at %d/%d cells; checkpoint saved to %s — rerun to resume\n",
					last.Done, last.Total, *checkpoint)
			}
			return err
		}
		fmt.Fprintf(os.Stderr, "engine: %d cells (%d cached, %d computed, %d retries) in %s (%.1f cells/s)\n",
			res.Engine.Done, res.Engine.Cached, res.Engine.Computed, res.Engine.Retries,
			res.Engine.Elapsed.Round(1e7), res.Engine.CellsPerSecond())
		switch *format {
		case "table":
			fmt.Printf("%s at %.2f m — SAVAT in zJ (mean of %d campaigns)\n", res.Machine, res.Distance, spec.Repeats)
			fmt.Print(report.MatrixTable(res.Mean))
		case "heatmap":
			fmt.Print(report.Heatmap(res.Mean))
		case "csv":
			fmt.Print(report.CSV(res.Mean))
		case "bars":
			out, err := report.SelectedPairsChart(
				fmt.Sprintf("%s at %.2f m — selected pairings (zJ)", res.Machine, res.Distance),
				res.Mean, paperdata.SelectedPairs)
			if err != nil {
				return err
			}
			fmt.Print(out)
		case "stats":
			fmt.Print(report.MatrixTableWithStats(res))
			fmt.Printf("mean σ/mean over all cells: %.3f (paper: ≈0.05)\n", res.MeanRelStdDev())
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
		return nil

	case len(spec.Config.Countermeasures) > 0:
		// Countermeasure report: the matched campaign pair — the spec as
		// given and the spec with its chain stripped — scored as per-cell
		// SAVAT attenuation and matrix-level distinguishability loss.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		var opts savat.CampaignOptions
		cache, closeCache, err := cf.OpenCache()
		if err != nil {
			return err
		}
		defer closeCache()
		opts.Cache = cache
		rep, err := savat.RunCountermeasureReport(ctx, spec, opts)
		if err != nil {
			return err
		}
		return rep.WriteTable(os.Stdout)
	}
	return fmt.Errorf("nothing to do: pass -pair A/B, -matrix, or -countermeasure (see -help)")
}

func arrayDesc(bytes int) string {
	if bytes == 0 {
		return "none (non-memory event)"
	}
	return fmt.Sprintf("%d KiB", bytes>>10)
}

func parsePair(s string) (savat.Event, savat.Event, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("pair %q must be A/B, e.g. ADD/LDM", s)
	}
	a, err := savat.EventByName(parts[0])
	if err != nil {
		return 0, 0, err
	}
	b, err := savat.EventByName(parts[1])
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}
