// Command savatasm assembles and disassembles SVX32 programs — the
// instruction set the simulated case-study machines execute.
//
//	savatasm prog.s               # assemble, print word listing
//	savatasm -hex prog.s          # assemble to hex words (one per line)
//	savatasm -d prog.hex          # disassemble hex words back to assembly
//	echo 'movi r1, 5' | savatasm  # read from stdin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "savatasm:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		disasm = flag.Bool("d", false, "disassemble hex words instead of assembling")
		hexOut = flag.Bool("hex", false, "emit bare hex words instead of a listing")
	)
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		return err
	}
	if *disasm {
		return disassemble(src)
	}
	return assemble(src, *hexOut)
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func assemble(src string, hexOut bool) error {
	prog, err := asm.Assemble(src)
	if err != nil {
		return err
	}
	words, err := prog.Words()
	if err != nil {
		return err
	}
	if hexOut {
		for _, w := range words {
			fmt.Printf("%08x\n", w)
		}
		return nil
	}
	for i, w := range words {
		fmt.Printf("%4d: %08x  %s\n", i, w, prog.Instructions[i])
	}
	if len(prog.Symbols) > 0 {
		fmt.Println("\nsymbols:")
		for name, v := range prog.Symbols {
			fmt.Printf("  %-16s %d\n", name, v)
		}
	}
	return nil
}

func disassemble(src string) error {
	sc := bufio.NewScanner(strings.NewReader(src))
	var words []uint32
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") {
			continue
		}
		for _, f := range strings.Fields(line) {
			f = strings.TrimPrefix(f, "0x")
			v, err := strconv.ParseUint(f, 16, 32)
			if err != nil {
				return fmt.Errorf("bad hex word %q: %w", f, err)
			}
			words = append(words, uint32(v))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fmt.Print(isa.Disassemble(words))
	return nil
}
