// Command savatsim runs an SVX32 assembly program on one of the simulated
// case-study machines and reports architectural state, cache behaviour,
// and the per-component activity that would drive the EM model — useful
// for understanding what a kernel radiates before measuring it.
//
//	savatsim prog.s
//	savatsim -machine TurionX2 -max-steps 2000000 prog.s
//	echo 'movi r1, 6
//	muli r1, r1, 7
//	halt' | savatsim
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/activity"
	"repro/internal/asm"
	"repro/internal/cliconf"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memhier"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "savatsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		cf       = cliconf.Register(flag.CommandLine, cliconf.Machine)
		maxSteps = flag.Uint64("max-steps", 10_000_000, "instruction budget")
		regs     = flag.Bool("regs", true, "print final register state")
	)
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		return err
	}
	prog, err := asm.Assemble(src)
	if err != nil {
		return err
	}
	mc, err := cf.MachineConfig()
	if err != nil {
		return err
	}

	hier, err := memhier.New(mc.Mem)
	if err != nil {
		return err
	}
	core, err := cpu.New(mc.CPU, prog.Instructions, hier)
	if err != nil {
		return err
	}
	if _, err := core.Run(*maxSteps); err != nil {
		return err
	}

	fmt.Printf("machine:   %s (%.1f GHz)\n", mc.Name, mc.ClockHz/1e9)
	fmt.Printf("halted:    %v\n", core.Halted())
	fmt.Printf("retired:   %d instructions in %d cycles (CPI %.2f, %.1f µs simulated)\n",
		core.Retired(), core.Cycle(),
		float64(core.Cycle())/float64(core.Retired()),
		float64(core.Cycle())/mc.ClockHz*1e6)
	fmt.Printf("branches:  %d mispredicted\n", core.Mispredicts())

	l1, l2, mem := hier.ServiceCounts()
	fmt.Printf("memory:    %d L1 hits, %d L2 hits, %d memory accesses\n", l1, l2, mem)
	fmt.Printf("L1:        %.1f%% miss rate\n", hier.L1().Stats().MissRate()*100)
	fmt.Printf("L2:        %.1f%% miss rate\n", hier.L2().Stats().MissRate()*100)
	if f, m := hier.WCStats(); f+m > 0 {
		fmt.Printf("wc buffer: %d flushes, %d merged stores\n", f, m)
	}
	fmt.Printf("dram:      %.0f%% row-buffer hit rate\n", hier.DRAM().Stats().RowHitRate()*100)

	v := core.TakeActivity()
	fmt.Println("\nactivity events (what the EM model radiates):")
	for _, c := range activity.Components() {
		if v[c] > 0 {
			fmt.Printf("  %-7s %12.0f\n", c, v[c])
		}
	}

	if *regs {
		fmt.Println("\nregisters:")
		for r := 0; r < isa.NumRegs; r++ {
			v := core.Reg(isa.Reg(r))
			fmt.Printf("  r%-2d = %10d (%#08x)", r, v, v)
			if r%2 == 1 {
				fmt.Println()
			} else {
				fmt.Print("   ")
			}
		}
	}
	return nil
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
