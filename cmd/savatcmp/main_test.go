package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadValidCSV(t *testing.T) {
	m, err := load(writeTemp(t, "A/B,LDM,NOI\nLDM,1.5,2.0\nNOI,2.0,0.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 2 {
		t.Fatalf("size = %d", m.Size())
	}
	// CSV values are zeptojoules; the matrix stores joules.
	if got := m.Vals[0][1]; got != 2.0e-21 {
		t.Errorf("cell LDM/NOI = %g, want 2e-21", got)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := load(filepath.Join(t.TempDir(), "absent.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadMalformedCSV(t *testing.T) {
	cases := []struct {
		name, csv, wantErr string
	}{
		{"empty", "", "header and rows"},
		{"header-only", "A/B,LDM,NOI", "header and rows"},
		{"bare-header", "justonefield\nrow", "malformed CSV header"},
		{"unknown-header-event", "A/B,LDM,WAT\nLDM,1,2\nWAT,2,1", "unknown event"},
		{"row-count", "A/B,LDM,NOI\nLDM,1,2", "1 rows for 2 events"},
		{"field-count", "A/B,LDM,NOI\nLDM,1\nNOI,2,1", "has 2 fields, want 3"},
		{"unknown-row-event", "A/B,LDM,NOI\nLDM,1,2\nWAT,2,1", "unknown event"},
		{"row-order", "A/B,LDM,NOI\nNOI,1,2\nLDM,2,1", "rows must match header order"},
		{"bad-float", "A/B,LDM,NOI\nLDM,1,x\nNOI,2,1", "invalid syntax"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := load(writeTemp(t, c.csv))
			if err == nil {
				t.Fatalf("malformed CSV accepted:\n%s", c.csv)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, c.wantErr)
			}
		})
	}
}
