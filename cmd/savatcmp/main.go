// Command savatcmp compares two SAVAT matrices: rank correlation,
// typical cell ratio, and the largest per-cell deviations. Useful for
// comparing machines, distances, seeds, or model variants.
//
// With two arguments it compares CSV files (saved by
// `savat -matrix -format csv` or by hand from published data):
//
//	savat -machine Core2Duo -matrix -format csv -fast > a.csv
//	savat -machine TurionX2 -matrix -format csv -fast > b.csv
//	savatcmp a.csv b.csv
//
// With one argument it measures the configured machine live and
// compares the result against the file — e.g. checking a saved matrix
// against a model change, or a published matrix against the simulation:
//
//	savatcmp -machine Core2Duo -distance 0.5 -fast baseline.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"sync"

	"repro/internal/cliconf"
	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/savat"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "savatcmp:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		cf  = cliconf.Register(flag.CommandLine, cliconf.All|cliconf.Spec)
		top = flag.Int("top", 10, "how many largest deviations to list")
	)
	flag.Parse()

	// -emit-spec serializes the live-measurement campaign instead of
	// running a comparison; -spec drives the live side from a file.
	if emitted, err := cf.WriteEmittedSpec(); emitted || err != nil {
		return err
	}

	var a, b *savat.Matrix
	var aName, bName string
	switch flag.NArg() {
	case 2:
		var err error
		if a, err = load(flag.Arg(0)); err != nil {
			return err
		}
		if b, err = load(flag.Arg(1)); err != nil {
			return err
		}
		aName, bName = flag.Arg(0), flag.Arg(1)
	case 1:
		var err error
		if b, err = load(flag.Arg(0)); err != nil {
			return err
		}
		if a, err = measureLive(cf); err != nil {
			return err
		}
		spec, err := cf.CampaignSpec()
		if err != nil {
			return err
		}
		aName, bName = "live "+spec.Machine, flag.Arg(0)
	default:
		return fmt.Errorf("usage: savatcmp [flags] a.csv b.csv  |  savatcmp [flags] baseline.csv")
	}

	if a.Size() != b.Size() {
		return fmt.Errorf("matrix sizes differ: %d vs %d", a.Size(), b.Size())
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			return fmt.Errorf("event order differs at %d: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}

	rho, err := stats.SpearmanRank(a.Flat(), b.Flat())
	if err != nil {
		return err
	}
	type cell struct {
		name     string
		av, bv   float64
		logRatio float64
	}
	var cells []cell
	var logSum float64
	var n int
	for i := range a.Vals {
		for j := range a.Vals[i] {
			av, bv := a.Vals[i][j], b.Vals[i][j]
			if av <= 0 || bv <= 0 {
				continue
			}
			lr := math.Log10(av / bv)
			logSum += math.Abs(lr)
			n++
			cells = append(cells, cell{
				name: fmt.Sprintf("%v/%v", a.Events[i], a.Events[j]),
				av:   av, bv: bv, logRatio: lr,
			})
		}
	}
	if n == 0 {
		return fmt.Errorf("no comparable cells")
	}
	fmt.Printf("A: %s\nB: %s\n", aName, bName)
	fmt.Printf("cells compared:        %d\n", n)
	fmt.Printf("Spearman rank corr:    %.3f\n", rho)
	fmt.Printf("typical cell ratio:    %.2fx\n", math.Pow(10, logSum/float64(n)))

	sort.Slice(cells, func(x, y int) bool {
		return math.Abs(cells[x].logRatio) > math.Abs(cells[y].logRatio)
	})
	if *top > len(cells) {
		*top = len(cells)
	}
	fmt.Printf("\nlargest deviations (A vs B, zJ):\n")
	for _, c := range cells[:*top] {
		fmt.Printf("  %-10s %8.2f vs %8.2f  (%+.2fx)\n",
			c.name, c.av*1e21, c.bv*1e21, math.Pow(10, c.logRatio))
	}
	return nil
}

// measureLive runs a full matrix campaign on the configured machine.
func measureLive(cf *cliconf.Flags) (*savat.Matrix, error) {
	spec, err := cf.CampaignSpec()
	if err != nil {
		return nil, err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var opts savat.CampaignOptions
	ch := make(chan engine.ProgressEvent, 64)
	opts.Monitor = ch
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ev := range ch {
			fmt.Fprintf(os.Stderr, "\rmeasuring %s: %d/%d cells",
				spec.Machine, ev.Stats.Done, ev.Stats.Total)
		}
		fmt.Fprintln(os.Stderr)
	}()
	res, err := savat.RunSpecContext(ctx, spec, opts)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	return res.Mean, nil
}

func load(path string) (*savat.Matrix, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return report.ParseCSV(string(data))
}
