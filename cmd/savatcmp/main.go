// Command savatcmp compares two SAVAT matrices saved as CSV (by
// `savat -matrix -format csv` or by hand from published data): rank
// correlation, typical cell ratio, and the largest per-cell deviations.
// Useful for comparing machines, distances, seeds, or model variants.
//
//	savat -machine Core2Duo -matrix -format csv -fast > a.csv
//	savat -machine TurionX2 -matrix -format csv -fast > b.csv
//	savatcmp a.csv b.csv
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/report"
	"repro/internal/savat"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "savatcmp:", err)
		os.Exit(1)
	}
}

func run() error {
	var top = flag.Int("top", 10, "how many largest deviations to list")
	flag.Parse()
	if flag.NArg() != 2 {
		return fmt.Errorf("usage: savatcmp [-top N] a.csv b.csv")
	}
	a, err := load(flag.Arg(0))
	if err != nil {
		return err
	}
	b, err := load(flag.Arg(1))
	if err != nil {
		return err
	}
	if a.Size() != b.Size() {
		return fmt.Errorf("matrix sizes differ: %d vs %d", a.Size(), b.Size())
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			return fmt.Errorf("event order differs at %d: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}

	rho, err := stats.SpearmanRank(a.Flat(), b.Flat())
	if err != nil {
		return err
	}
	type cell struct {
		name     string
		av, bv   float64
		logRatio float64
	}
	var cells []cell
	var logSum float64
	var n int
	for i := range a.Vals {
		for j := range a.Vals[i] {
			av, bv := a.Vals[i][j], b.Vals[i][j]
			if av <= 0 || bv <= 0 {
				continue
			}
			lr := math.Log10(av / bv)
			logSum += math.Abs(lr)
			n++
			cells = append(cells, cell{
				name: fmt.Sprintf("%v/%v", a.Events[i], a.Events[j]),
				av:   av, bv: bv, logRatio: lr,
			})
		}
	}
	if n == 0 {
		return fmt.Errorf("no comparable cells")
	}
	fmt.Printf("cells compared:        %d\n", n)
	fmt.Printf("Spearman rank corr:    %.3f\n", rho)
	fmt.Printf("typical cell ratio:    %.2fx\n", math.Pow(10, logSum/float64(n)))

	sort.Slice(cells, func(x, y int) bool {
		return math.Abs(cells[x].logRatio) > math.Abs(cells[y].logRatio)
	})
	if *top > len(cells) {
		*top = len(cells)
	}
	fmt.Printf("\nlargest deviations (A vs B, zJ):\n")
	for _, c := range cells[:*top] {
		fmt.Printf("  %-10s %8.2f vs %8.2f  (%+.2fx)\n",
			c.name, c.av*1e21, c.bv*1e21, math.Pow(10, c.logRatio))
	}
	return nil
}

func load(path string) (*savat.Matrix, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return report.ParseCSV(string(data))
}
