// Command daemonsmoke is the end-to-end smoke harness for savatd (run
// as `make daemon-smoke`). It builds the daemon, starts it on a random
// port with a temporary state directory, and drives the full campaign
// lifecycle over the HTTP API:
//
//  1. submit a 3×3 campaign and cancel it mid-run via DELETE,
//  2. resubmit the identical spec and watch it resume from the
//     checkpoint (cached cells > 0),
//  3. stream the progress events (NDJSON),
//  4. fetch the finished matrix and diff it bit-for-bit against a
//     direct in-process savat.RunSpec of the same spec,
//  5. SIGKILL the daemon mid-campaign, restart it on the same state
//     directory, and watch the resubmitted campaign resume from the
//     durable cell store (the campaign is shorter than the periodic
//     checkpoint interval and a SIGKILL skips the final checkpoint, so
//     every resumed cell must have come through the store's
//     write-behind flusher), finishing bit-identical to a direct run,
//  6. run a power-channel campaign through the same cancel/resume
//     cycle: the channel dimension must reach the daemon's checkpoint
//     and cache fingerprints intact, and the resumed matrix must be
//     bit-identical to a direct in-process run of the same spec.
//
// Any divergence, HTTP error, or timeout exits non-zero.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/savat"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "daemon-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("daemon-smoke: PASS")
}

// smokeSpec is the campaign the smoke run submits: a 3×3 grid with
// one-second captures and three repetitions, enough work (run with
// -parallelism 1) that the mid-run DELETE below lands with over twenty
// cells still outstanding — a margin that has to absorb the simulator
// getting faster release over release, so err well on the slow side.
func smokeSpec() savat.CampaignSpec {
	spec := savat.DefaultCampaignSpec()
	spec.Config = savat.FastConfig()
	spec.Config.Duration = 1.0
	spec.Events = []savat.Event{savat.ADD, savat.LDM, savat.DIV}
	spec.Repeats = 3
	spec.Seed = 11
	return spec
}

func run() error {
	tmp, err := os.MkdirTemp("", "daemonsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// Build the daemon binary; `go run` would put a wrapper process
	// between us and savatd and swallow the SIGTERM at the end.
	bin := filepath.Join(tmp, "savatd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/savatd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building savatd: %w", err)
	}

	stateDir := filepath.Join(tmp, "state")
	daemon, base, err := startDaemon(bin, stateDir)
	if err != nil {
		return err
	}
	defer func() {
		daemon.Process.Signal(syscall.SIGTERM)
		daemon.Wait()
	}()
	fmt.Println("daemon-smoke: daemon at", base)

	spec := smokeSpec()
	total := len(spec.Events) * len(spec.Events) * spec.Repeats

	// Submit and cancel mid-run: wait for two cells to stream, then
	// DELETE the campaign.
	first, err := submit(base, spec)
	if err != nil {
		return err
	}
	fmt.Println("daemon-smoke: submitted", first.ID)
	if err := streamEvents(base, first.ID, 2); err != nil {
		return err
	}
	// DELETE requests cancellation; the job reaches the cancelled state
	// asynchronously once the engine unwinds and checkpoints.
	if _, err := cancel(base, first.ID); err != nil {
		return err
	}
	final, err := awaitTerminal(base, first.ID)
	if err != nil {
		return err
	}
	if final.State != service.StateCancelled {
		return fmt.Errorf("job %s after DELETE: %s, want cancelled", first.ID, final.State)
	}
	fmt.Printf("daemon-smoke: cancelled %s after %d/%d cells\n", first.ID, final.Stats.Done, total)

	// Resubmit the identical spec: the fingerprint-keyed checkpoint
	// must restore the cancelled run's finished cells.
	second, err := submit(base, spec)
	if err != nil {
		return err
	}
	if second.Fingerprint != first.Fingerprint {
		return fmt.Errorf("same spec, different fingerprints: %s vs %s", second.Fingerprint, first.Fingerprint)
	}
	if err := streamEvents(base, second.ID, total); err != nil {
		return err
	}
	final, err = awaitTerminal(base, second.ID)
	if err != nil {
		return err
	}
	if final.State != service.StateDone {
		return fmt.Errorf("resumed job %s: state %s, error %q", second.ID, final.State, final.Error)
	}
	if final.Stats.Cached == 0 {
		return fmt.Errorf("resumed job %s recomputed everything; checkpoint restored nothing", second.ID)
	}
	fmt.Printf("daemon-smoke: resumed %s (%d cells from checkpoint, %d computed)\n",
		second.ID, final.Stats.Cached, final.Stats.Computed)

	// The daemon's matrix must match a direct in-process run bit for bit.
	var served savat.MatrixStats
	if err := getJSON(base+"/v1/campaigns/"+second.ID+"/result", &served); err != nil {
		return err
	}
	direct, err := savat.RunSpec(spec, savat.CampaignOptions{})
	if err != nil {
		return err
	}
	a, _ := json.Marshal(served.Cells)
	b, _ := json.Marshal(direct.Cells)
	if !bytes.Equal(a, b) {
		return fmt.Errorf("daemon result diverges from direct run:\n%s\nvs\n%s", a, b)
	}
	fmt.Println("daemon-smoke: matrix bit-identical to direct run")

	// Phase 5: SIGKILL mid-campaign. A fresh spec (different seed) avoids
	// the cells already persisted above; the campaign is far shorter than
	// the 64-cell periodic checkpoint interval and the kill skips the
	// final one, so the restarted daemon can only resume from cells the
	// durable store flushed before the kill.
	spec2 := smokeSpec()
	spec2.Seed = 23
	killed, err := submit(base, spec2)
	if err != nil {
		return err
	}
	fmt.Println("daemon-smoke: submitted", killed.ID, "(kill phase)")
	if err := streamEvents(base, killed.ID, 3); err != nil {
		return err
	}
	// Give the store's write-behind flusher (25 ms cadence) time to make
	// the streamed cells durable, then kill without any shutdown path.
	time.Sleep(150 * time.Millisecond)
	if err := daemon.Process.Kill(); err != nil {
		return fmt.Errorf("SIGKILL: %w", err)
	}
	daemon.Wait()
	fmt.Println("daemon-smoke: daemon SIGKILLed mid-campaign")

	daemon, base, err = startDaemon(bin, stateDir)
	if err != nil {
		return fmt.Errorf("restarting after SIGKILL: %w", err)
	}
	fmt.Println("daemon-smoke: restarted at", base)

	resumed, err := submit(base, spec2)
	if err != nil {
		return err
	}
	if resumed.Fingerprint != killed.Fingerprint {
		return fmt.Errorf("same spec, different fingerprints: %s vs %s", resumed.Fingerprint, killed.Fingerprint)
	}
	final, err = awaitTerminal(base, resumed.ID)
	if err != nil {
		return err
	}
	if final.State != service.StateDone {
		return fmt.Errorf("post-kill job %s: state %s, error %q", resumed.ID, final.State, final.Error)
	}
	if final.Stats.Cached == 0 {
		return fmt.Errorf("post-kill job %s recomputed everything; the store recovered nothing", resumed.ID)
	}
	fmt.Printf("daemon-smoke: resumed %s after SIGKILL (%d cells from the store, %d computed)\n",
		resumed.ID, final.Stats.Cached, final.Stats.Computed)

	var served2 savat.MatrixStats
	if err := getJSON(base+"/v1/campaigns/"+resumed.ID+"/result", &served2); err != nil {
		return err
	}
	direct2, err := savat.RunSpec(spec2, savat.CampaignOptions{})
	if err != nil {
		return err
	}
	a, _ = json.Marshal(served2.Cells)
	b, _ = json.Marshal(direct2.Cells)
	if !bytes.Equal(a, b) {
		return fmt.Errorf("post-kill result diverges from direct run:\n%s\nvs\n%s", a, b)
	}
	fmt.Println("daemon-smoke: post-kill matrix bit-identical to direct run")

	// Phase 6: a conducted-channel campaign through the cancel/resume
	// cycle. The channel dimension is part of the spec's fingerprint and
	// cell keys, so the resumed run may only restore cells the power
	// campaign itself finished — never the EM cells persisted above.
	spec3 := smokeSpec()
	spec3.Config.Channel = "power"
	spec3.Config.Environment = machine.Channels()["power"].Environment()
	spec3.Seed = 31
	pj, err := submit(base, spec3)
	if err != nil {
		return err
	}
	fmt.Println("daemon-smoke: submitted", pj.ID, "(power channel)")
	if err := streamEvents(base, pj.ID, 2); err != nil {
		return err
	}
	if _, err := cancel(base, pj.ID); err != nil {
		return err
	}
	if final, err = awaitTerminal(base, pj.ID); err != nil {
		return err
	}
	if final.State != service.StateCancelled {
		return fmt.Errorf("power job %s after DELETE: %s, want cancelled", pj.ID, final.State)
	}
	pr, err := submit(base, spec3)
	if err != nil {
		return err
	}
	if pr.Fingerprint != pj.Fingerprint {
		return fmt.Errorf("same power spec, different fingerprints: %s vs %s", pr.Fingerprint, pj.Fingerprint)
	}
	if pr.Fingerprint == killed.Fingerprint {
		return fmt.Errorf("power campaign fingerprint collides with the EM campaign's")
	}
	if final, err = awaitTerminal(base, pr.ID); err != nil {
		return err
	}
	if final.State != service.StateDone {
		return fmt.Errorf("resumed power job %s: state %s, error %q", pr.ID, final.State, final.Error)
	}
	if final.Stats.Cached == 0 {
		return fmt.Errorf("resumed power job %s recomputed everything; checkpoint restored nothing", pr.ID)
	}
	fmt.Printf("daemon-smoke: resumed power campaign %s (%d cells restored, %d computed)\n",
		pr.ID, final.Stats.Cached, final.Stats.Computed)

	var served3 savat.MatrixStats
	if err := getJSON(base+"/v1/campaigns/"+pr.ID+"/result", &served3); err != nil {
		return err
	}
	direct3, err := savat.RunSpec(spec3, savat.CampaignOptions{})
	if err != nil {
		return err
	}
	a, _ = json.Marshal(served3.Cells)
	b, _ = json.Marshal(direct3.Cells)
	if !bytes.Equal(a, b) {
		return fmt.Errorf("power-channel result diverges from direct run:\n%s\nvs\n%s", a, b)
	}
	fmt.Println("daemon-smoke: power-channel matrix bit-identical to direct run")
	return nil
}

// startDaemon launches the built savatd on a random port over stateDir
// and returns the process and its base URL.
func startDaemon(bin, stateDir string) (*exec.Cmd, string, error) {
	daemon := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-state-dir", stateDir,
		"-max-active", "1",
		"-parallelism", "1",
	)
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return nil, "", fmt.Errorf("starting savatd: %w", err)
	}
	base, err := listenAddr(stdout)
	if err != nil {
		daemon.Process.Kill()
		daemon.Wait()
		return nil, "", err
	}
	return daemon, base, nil
}

// listenAddr reads the daemon's startup line ("savatd: listening on
// http://ADDR") and returns the base URL.
func listenAddr(stdout interface{ Read([]byte) (int, error) }) (string, error) {
	type result struct {
		base string
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Println("daemon-smoke: savatd:", line)
			if i := strings.Index(line, "listening on "); i >= 0 {
				ch <- result{base: strings.TrimSpace(line[i+len("listening on "):])}
				// Keep draining so the daemon never blocks on stdout.
				for sc.Scan() {
				}
				return
			}
		}
		ch <- result{err: fmt.Errorf("savatd exited before announcing its address")}
	}()
	select {
	case r := <-ch:
		return r.base, r.err
	case <-time.After(30 * time.Second):
		return "", fmt.Errorf("timed out waiting for savatd to listen")
	}
}

func submit(base string, spec savat.CampaignSpec) (service.Job, error) {
	var jb service.Job
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return jb, err
	}
	body, err := json.Marshal(service.SubmitRequest{Spec: specJSON, Tenant: "smoke"})
	if err != nil {
		return jb, err
	}
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return jb, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return jb, fmt.Errorf("submit: status %d", resp.StatusCode)
	}
	return jb, json.NewDecoder(resp.Body).Decode(&jb)
}

// streamEvents reads the NDJSON event stream until n events arrived,
// then drops the connection (the daemon must tolerate that).
func streamEvents(base, id string, n int) error {
	resp, err := http.Get(base + "/v1/campaigns/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	seen := 0
	for seen < n && sc.Scan() {
		var ev engine.ProgressEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("bad event line %q: %v", sc.Text(), err)
		}
		seen++
	}
	if seen < n {
		return fmt.Errorf("event stream for %s ended after %d events, want %d", id, seen, n)
	}
	return nil
}

func cancel(base, id string) (service.Job, error) {
	var jb service.Job
	req, err := http.NewRequest("DELETE", base+"/v1/campaigns/"+id, nil)
	if err != nil {
		return jb, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return jb, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jb, fmt.Errorf("cancel %s: status %d", id, resp.StatusCode)
	}
	return jb, json.NewDecoder(resp.Body).Decode(&jb)
}

func awaitTerminal(base, id string) (service.Job, error) {
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var jb service.Job
		if err := getJSON(base+"/v1/campaigns/"+id, &jb); err != nil {
			return jb, err
		}
		if jb.State.Terminal() {
			return jb, nil
		}
		if time.Now().After(deadline) {
			return jb, fmt.Errorf("job %s still %s after 2m", id, jb.State)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
