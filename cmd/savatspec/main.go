// Command savatspec records and plots the received spectrum around the
// alternation frequency for one instruction pair — the views of the
// paper's Figure 7 (ADD/LDM: a strong, slightly shifted and dispersed
// alternation line) and Figure 8 (ADD/ADD: the measurement floor with a
// weak external radio carrier).
//
//	savatspec -machine Core2Duo -pair ADD/LDM
//	savatspec -pair ADD/ADD
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/savat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "savatspec:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		machineName = flag.String("machine", "Core2Duo", "system to simulate")
		distance    = flag.Float64("distance", 0.10, "antenna distance in metres")
		pairFlag    = flag.String("pair", "ADD/LDM", "pair to alternate, e.g. ADD/LDM")
		span        = flag.Float64("span", 2e3, "plot half-span around the alternation frequency in Hz")
		seed        = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	mc, err := machine.ConfigByName(*machineName)
	if err != nil {
		return err
	}
	parts := strings.Split(*pairFlag, "/")
	if len(parts) != 2 {
		return fmt.Errorf("pair %q must be A/B", *pairFlag)
	}
	a, err := savat.EventByName(parts[0])
	if err != nil {
		return err
	}
	b, err := savat.EventByName(parts[1])
	if err != nil {
		return err
	}

	cfg := savat.DefaultConfig()
	cfg.Distance = *distance
	rng := rand.New(rand.NewSource(*seed))
	m, err := savat.NewMeasurer(mc, cfg).Measure(a, b, rng)
	if err != nil {
		return err
	}

	fmt.Printf("%s %v/%v alternation at %.2f m (intended %.0f kHz, loop count %d)\n",
		mc.Name, a, b, cfg.Distance, cfg.Frequency/1e3, m.LoopCount)
	plot, err := report.SpectrumPlot(m.Trace, cfg.Frequency, *span, 78, 16)
	if err != nil {
		return err
	}
	fmt.Print(plot)

	peakF, peakPSD, err := m.Trace.Peak(cfg.Frequency, cfg.BandHalfWidth)
	if err != nil {
		return err
	}
	fmt.Printf("peak: %.1f Hz (shift %+.0f Hz from intended), %.3g W/Hz\n",
		peakF, peakF-cfg.Frequency, peakPSD)
	fmt.Printf("band power %.0f kHz ± %.0f kHz: %.3g W over %.3g pairs/s\n",
		cfg.Frequency/1e3, cfg.BandHalfWidth/1e3, m.BandPower, m.PairsPerSecond)
	fmt.Printf("SAVAT = %.2f zJ per %v/%v instruction pair\n", m.ZJ(), a, b)
	return nil
}
