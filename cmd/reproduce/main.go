// Command reproduce regenerates every table and figure of the paper's
// evaluation (Section V) on the simulated systems and compares each
// against the published values embedded in internal/paperdata.
//
//	reproduce                 # everything, full-fidelity (minutes)
//	reproduce -fast           # quarter-second captures, 3 campaigns
//	reproduce -section fig9   # one experiment
//
// Sections: events, machines, fig7, fig8, fig9, fig12, fig14, fig16,
// fig17, fig18, repeatability, naive, groups, savat1, sequences,
// extensions.
//
// All campaigns share one per-cell result cache, so experiments that
// revisit a figure's matrix (repeatability, groups, savat1 reuse fig9;
// fig16 reuses fig17/fig18) measure each cell only once. With
// -cache-dir the cache persists on disk and later runs — including a
// run interrupted with Ctrl-C — skip every cell already measured.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cliconf"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/paperdata"
	"repro/internal/report"
	"repro/internal/savat"
	"repro/internal/stats"
)

type runner struct {
	ctx     context.Context
	cfgBase savat.Config
	repeats int
	seed    int64
	cache   *engine.Cache // shared across figures: repeated matrices hit it

	section string       // experiment currently regenerating (set between campaigns)
	live    atomic.Value // liveProgress — the value behind /progress
}

// liveProgress is the JSON shape the -metrics-addr /progress endpoint
// serves: which experiment is regenerating and the latest campaign
// event (engine stats + pipeline health).
type liveProgress struct {
	Section string               `json:"section"`
	Event   engine.ProgressEvent `json:"event"`
}

// storeProgress caches the latest campaign event for /progress.
func (r *runner) storeProgress(ev engine.ProgressEvent) {
	r.live.Store(liveProgress{Section: r.section, Event: ev})
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		cf      = cliconf.Register(flag.CommandLine, cliconf.Repeats|cliconf.Seed|cliconf.Fast|cliconf.Profile|cliconf.Metrics|cliconf.Spec|cliconf.CacheDir)
		section = flag.String("section", "all", "which experiment to regenerate")
	)
	flag.Parse()

	// -emit-spec serializes the base campaign (the per-figure runs
	// override machine and distance from paperdata) instead of running.
	if emitted, err := cf.WriteEmittedSpec(); emitted || err != nil {
		return err
	}

	stopProf, err := cf.StartProfiles()
	if err != nil {
		return err
	}
	defer stopProf()

	// The base spec — from a -spec file or the flags — carries the
	// measurement setup, repeats, and seed shared by every experiment.
	baseSpec, err := cf.CampaignSpec()
	if err != nil {
		return err
	}
	cfg := baseSpec.Config
	// The closer flushes a store-backed cache's write-behind buffer on
	// exit, Ctrl-C included.
	cache, closeCache, err := cf.OpenCache()
	if err != nil {
		return err
	}
	defer closeCache()
	// Ctrl-C cancels the running campaign; with -cache-dir the cells
	// measured so far are already persisted, so a rerun resumes there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	r := &runner{
		ctx:     ctx,
		cfgBase: cfg,
		repeats: baseSpec.Repeats,
		seed:    baseSpec.Seed,
		cache:   cache,
	}
	stopObs, err := cf.StartObs(func() any { return r.live.Load() })
	if err != nil {
		return err
	}
	defer stopObs()
	// -fast drops to 3 campaigns per cell unless -repeats was given
	// explicitly (a -spec file fixes repeats itself).
	if cf.Fast && cf.SpecPath == "" {
		repeatsSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "repeats" {
				repeatsSet = true
			}
		})
		if !repeatsSet {
			r.repeats = 3
		}
	}

	sections := []struct {
		name string
		fn   func() error
	}{
		{"events", r.events},
		{"machines", r.machines},
		{"fig7", r.fig7},
		{"fig8", r.fig8},
		{"fig9", func() error { return r.figMatrix("fig9") }},
		{"fig12", func() error { return r.figMatrix("fig12") }},
		{"fig14", func() error { return r.figMatrix("fig14") }},
		{"fig17", func() error { return r.figMatrix("fig17") }},
		{"fig18", func() error { return r.figMatrix("fig18") }},
		{"fig16", r.fig16},
		{"repeatability", r.repeatability},
		{"naive", r.naive},
		{"groups", r.groups},
		{"savat1", r.singleInstruction},
		{"sequences", r.sequences},
		{"extensions", r.extensions},
	}
	ran := false
	for _, s := range sections {
		if *section != "all" && *section != s.name {
			continue
		}
		ran = true
		r.section = s.name
		fmt.Printf("\n======== %s ========\n", s.name)
		if err := s.fn(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	if !ran {
		return fmt.Errorf("unknown section %q", *section)
	}
	return nil
}

// events prints the Figure 5 instruction table.
func (r *runner) events() error {
	fmt.Println("Figure 5 — instructions/events under test")
	fmt.Printf("%-6s %-22s %s\n", "Event", "x86 instruction", "Description")
	for _, e := range savat.Events() {
		fmt.Printf("%-6s %-22s %s\n", e, e.X86(), e.Description())
	}
	return nil
}

// machines prints the Figure 6 system table.
func (r *runner) machines() error {
	fmt.Println("Figure 6 — case-study systems")
	fmt.Printf("%-10s %-8s %-18s %-18s %s\n", "System", "Clock", "L1 Data Cache", "L2 Cache", "DIV latency")
	for _, mc := range machine.CaseStudyMachines() {
		fmt.Printf("%-10s %.1f GHz %4d KB, %2d way    %5d KB, %2d way   %d cycles\n",
			mc.Name, mc.ClockHz/1e9,
			mc.Mem.L1.SizeBytes>>10, mc.Mem.L1.Assoc,
			mc.Mem.L2.SizeBytes>>10, mc.Mem.L2.Assoc,
			mc.CPU.DivCycles)
	}
	return nil
}

func (r *runner) spectrum(a, b savat.Event, caption string) error {
	mc := machine.Core2Duo()
	cfg := r.cfgBase
	rng := rand.New(rand.NewSource(r.seed))
	m, err := savat.NewMeasurer(mc, cfg).Measure(a, b, rng)
	if err != nil {
		return err
	}
	fmt.Println(caption)
	plot, err := report.SpectrumPlot(m.Trace, cfg.Frequency, 2e3, 78, 14)
	if err != nil {
		return err
	}
	fmt.Print(plot)
	pf, ppsd, err := m.Trace.Peak(cfg.Frequency, cfg.BandHalfWidth)
	if err != nil {
		return err
	}
	fmt.Printf("peak %+.0f Hz from intended %.0f kHz at %.2g W/Hz; floor %.2g W/Hz\n",
		pf-cfg.Frequency, cfg.Frequency/1e3, ppsd, m.Trace.FloorPSD)
	fmt.Printf("SAVAT = %.2f zJ\n", m.ZJ())
	return nil
}

func (r *runner) fig7() error {
	return r.spectrum(savat.ADD, savat.LDM,
		"Figure 7 — recorded spectrum for 80 kHz ADD/LDM alternation (expect a strong line,\nshifted a few hundred Hz below 80 kHz and dispersed by drift, within the ±1 kHz band)")
}

func (r *runner) fig8() error {
	return r.spectrum(savat.ADD, savat.ADD,
		"Figure 8 — recorded spectrum for 80 kHz ADD/ADD alternation (expect only the floor:\ninstrument sensitivity, diffuse RF background, residual loop mismatch, a weak carrier)")
}

// campaign measures one published figure's matrix. Per-cell results go
// through the shared engine cache, so a figure revisited by a later
// section — or a matrix that only differs in event order — reruns in
// milliseconds with every cell cache-served.
func (r *runner) campaign(id string) (*savat.MatrixStats, paperdata.Experiment, error) {
	exp, err := paperdata.ByID(id)
	if err != nil {
		return nil, exp, err
	}
	// Each figure is the base campaign with the published machine and
	// distance applied — the same CampaignSpec shape savatd serves.
	spec := savat.DefaultCampaignSpec()
	spec.Machine = exp.Machine
	spec.Config = r.cfgBase
	spec.Config.Distance = exp.Distance
	spec.Repeats = r.repeats
	spec.Seed = r.seed
	var opts savat.CampaignOptions
	opts.Cache = r.cache
	ch := make(chan engine.ProgressEvent, 64)
	opts.Monitor = ch
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		shown := false
		for ev := range ch {
			r.storeProgress(ev)
			// Cache-served replays finish too fast to be worth drawing.
			if !ev.Cached || shown {
				shown = true
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d cells (%d cached)",
					id, ev.Stats.Done, ev.Stats.Total, ev.Stats.Cached)
			}
		}
		if shown {
			fmt.Fprintln(os.Stderr)
		}
	}()
	res, err := savat.RunSpecContext(r.ctx, spec, opts)
	wg.Wait()
	if err != nil {
		return nil, exp, err
	}
	return res, exp, nil
}

// figMatrix regenerates one published 11×11 matrix and compares shape.
func (r *runner) figMatrix(id string) error {
	res, exp, err := r.campaign(id)
	if err != nil {
		return err
	}
	fmt.Printf("%s — %s at %.2f m, %d campaigns/cell — measured SAVAT (zJ)\n",
		id, exp.Machine, exp.Distance, r.repeats)
	fmt.Print(report.MatrixTable(res.Mean))
	fmt.Println("\nheat map (cf. the paper's visualization):")
	fmt.Print(report.Heatmap(res.Mean))
	fmt.Println("\nselected pairings (cf. the paper's bar chart):")
	bars, err := report.SelectedPairsChart("", res.Mean, paperdata.SelectedPairs)
	if err != nil {
		return err
	}
	fmt.Print(bars)
	return compareToPaper(res.Mean, exp)
}

// compareToPaper prints quantitative shape agreement with the published
// matrix.
func compareToPaper(m *savat.Matrix, exp paperdata.Experiment) error {
	paper := exp.Matrix()
	rho, err := stats.SpearmanRank(m.Flat(), paper.Flat())
	if err != nil {
		return err
	}
	// Mean |log10 ratio| over cells.
	var logSum float64
	var n int
	for i := range m.Vals {
		for j := range m.Vals[i] {
			if m.Vals[i][j] > 0 && paper.Vals[i][j] > 0 {
				logSum += math.Abs(math.Log10(m.Vals[i][j] / paper.Vals[i][j]))
				n++
			}
		}
	}
	fmt.Printf("\npaper comparison (%s):\n", exp.ID)
	fmt.Printf("  Spearman rank correlation vs published matrix: %.3f\n", rho)
	fmt.Printf("  mean |log10(measured/paper)|: %.3f (%.2fx typical cell ratio)\n",
		logSum/float64(n), math.Pow(10, logSum/float64(n)))
	viol := m.DiagonalViolations(0.20)
	fmt.Printf("  diagonal-smallest violations (20%% tolerance): %d\n", len(viol))
	for _, v := range viol {
		fmt.Printf("    %v\n", v)
	}
	// Group structure.
	offchip := []savat.Event{savat.LDM, savat.STM}
	l2 := []savat.Event{savat.LDL2, savat.STL2}
	arith := []savat.Event{savat.LDL1, savat.STL1, savat.NOI, savat.ADD, savat.SUB, savat.MUL}
	for _, g := range []struct {
		name        string
		grp, others []savat.Event
	}{
		{"off-chip vs arithmetic", offchip, arith},
		{"L2 vs arithmetic", l2, arith},
	} {
		intra, inter, err := m.GroupMeans(g.grp, g.others)
		if err != nil {
			return err
		}
		verdict := "OK"
		if intra >= inter {
			verdict = "VIOLATED"
		}
		fmt.Printf("  group structure %-24s intra %.2f zJ vs inter %.2f zJ  [%s]\n",
			g.name, intra*1e21, inter*1e21, verdict)
	}
	return nil
}

// fig16 prints the 50 cm / 100 cm selected-pair bars for the Core 2 Duo.
func (r *runner) fig16() error {
	fmt.Println("Figure 16 — SAVAT at 50 cm and 100 cm, Core 2 Duo (zJ)")
	m50, _, err := r.campaign("fig17")
	if err != nil {
		return err
	}
	m100, _, err := r.campaign("fig18")
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %10s %10s\n", "pair", "50 cm", "100 cm")
	for _, p := range paperdata.SelectedPairs {
		v50, err := m50.Mean.At(p[0], p[1])
		if err != nil {
			return err
		}
		v100, err := m100.Mean.At(p[0], p[1])
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %10.2f %10.2f\n", fmt.Sprintf("%v/%v", p[0], p[1]), v50*1e21, v100*1e21)
	}
	fmt.Println("expect: off-chip pairs dominate; small 50→100 cm drop; DIV advantage shrinks")
	return nil
}

// repeatability prints the σ/mean statistics of the Figure 9 campaign.
func (r *runner) repeatability() error {
	res, _, err := r.campaign("fig9")
	if err != nil {
		return err
	}
	fmt.Printf("Section V repeatability — mean σ/mean over all 121 cells: %.3f (paper: ≈0.05)\n",
		res.MeanRelStdDev())
	fmt.Printf("A/B vs B/A swap asymmetry (placement-error diagnostic): %.3f\n",
		res.Mean.SwapAsymmetry())
	return nil
}

// naive contrasts the naive methodology with the alternation methodology.
func (r *runner) naive() error {
	mc := machine.Core2Duo()
	fmt.Println("Section III — naive (Figure 2) vs alternation methodology, LDL1/STL1 on Core 2 Duo")
	res, err := savat.NaiveMeasure(mc, savat.LDL1, savat.STL1, 0.10, savat.DefaultScopeConfig(), r.repeats, r.seed)
	if err != nil {
		return err
	}
	if e := res.MeanRelError(); math.IsInf(e, 1) || e > 1e6 {
		fmt.Println("  naive mean relative error (50 GS/s scope, 0.5% vertical error): ∞")
		fmt.Println("  (the true single-instruction difference is below the naive method's")
		fmt.Println("   resolution — every estimate it produces is pure measurement artifact)")
	} else {
		fmt.Printf("  naive mean relative error (50 GS/s scope, 0.5%% vertical error): %.2f\n", e)
	}
	vals, sum, err := savat.NewMeasurer(mc, r.cfgBase).MeasurePair(savat.LDL1, savat.STL1, r.repeats, r.seed)
	if err != nil {
		return err
	}
	_ = vals
	fmt.Printf("  alternation methodology σ/mean for the same pair:            %.2f\n", sum.RelStdDev())
	return nil
}

// groups clusters the measured Figure 9 matrix into the Section V groups.
func (r *runner) groups() error {
	res, _, err := r.campaign("fig9")
	if err != nil {
		return err
	}
	d, err := cluster.Cluster(res.Mean)
	if err != nil {
		return err
	}
	four, err := d.CutK(4)
	if err != nil {
		return err
	}
	fmt.Println("Section V groups — agglomerative clustering of the measured Figure 9 matrix (k=4):")
	for i, g := range four {
		names := make([]string, len(g))
		for j, e := range g {
			names[j] = e.String()
		}
		fmt.Printf("  group %d: %s\n", i+1, strings.Join(names, ", "))
	}
	sil, err := cluster.Silhouette(res.Mean, four)
	if err != nil {
		return err
	}
	fmt.Printf("  silhouette: %.2f\n", sil)
	fmt.Println("expect: {LDM,STM} {LDL2,STL2} {LDL1,STL1,NOI,ADD,SUB,MUL} {DIV}")
	return nil
}

// sequences demonstrates the Section III sequence measurement and the
// paper's sum-of-singles estimate with its predicted imprecision.
func (r *runner) sequences() error {
	mc := machine.Core2Duo()
	cfg := r.cfgBase
	fmt.Println("Section III — instruction sequences as A/B activity (Core 2 Duo, 10 cm)")
	fmt.Printf("%-22s %-22s %10s %10s %7s\n", "A sequence", "B sequence", "measured", "estimate", "ratio")
	for _, pair := range [][2]savat.Sequence{
		{{savat.LDM, savat.ADD}, {savat.ADD, savat.ADD}},
		{{savat.LDM, savat.DIV}, {savat.ADD, savat.ADD}},
		{{savat.LDM, savat.ADD, savat.LDM}, {savat.ADD, savat.ADD, savat.ADD}},
		{{savat.LDL2, savat.MUL}, {savat.LDL2, savat.ADD}},
	} {
		rng := rand.New(rand.NewSource(r.seed))
		meas, est, err := savat.SequenceAdditivity(mc, pair[0], pair[1], cfg, rng)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %-22s %7.2f zJ %7.2f zJ %7.2f\n",
			pair[0], pair[1], meas*1e21, est*1e21, meas/est)
	}
	fmt.Println("expect: ratios near but not at 1 — the paper predicts the sum-of-singles")
	fmt.Println("estimate is imprecise because instructions overlap and reorder.")
	return nil
}

// extensions measures the Section VII branch-prediction extension events.
func (r *runner) extensions() error {
	mc := machine.Core2Duo()
	cfg := r.cfgBase
	fmt.Println("Section VII — extension events: branch prediction hit (BPH) vs miss (BPM)")
	meas := savat.NewMeasurer(mc, cfg)
	for _, p := range [][2]savat.Event{
		{savat.BPH, savat.BPH},
		{savat.BPH, savat.BPM},
		{savat.ADD, savat.BPH},
		{savat.ADD, savat.BPM},
		{savat.BPM, savat.DIV},
	} {
		vals, sum, err := meas.MeasurePair(p[0], p[1], r.repeats, r.seed)
		if err != nil {
			return err
		}
		_ = vals
		fmt.Printf("  %-10s %7.2f ± %.2f zJ\n",
			fmt.Sprintf("%v/%v", p[0], p[1]), sum.Mean*1e21, sum.StdDev*1e21)
	}
	fmt.Println("expect: BPH/BPM well above the BPH/BPH floor — mispredict flushes radiate.")
	return nil
}

// singleInstruction prints the Section II single-instruction SAVAT values.
func (r *runner) singleInstruction() error {
	res, _, err := r.campaign("fig9")
	if err != nil {
		return err
	}
	ld, err := res.Mean.SingleInstructionSAVAT(savat.LoadEvents())
	if err != nil {
		return err
	}
	st, err := res.Mean.SingleInstructionSAVAT(savat.StoreEvents())
	if err != nil {
		return err
	}
	fmt.Println("Section II — single-instruction SAVAT (max over same-instruction pairs):")
	fmt.Printf("  load  instruction: %.2f zJ\n", ld*1e21)
	fmt.Printf("  store instruction: %.2f zJ\n", st*1e21)
	return nil
}
