// Command savatd is the measurement campaign daemon: it accepts
// savat.CampaignSpec submissions over an HTTP JSON API, runs them on a
// shared cache with in-flight deduplication and per-tenant fair
// scheduling, streams progress events, and checkpoints cancelled
// campaigns for resume. See DESIGN.md §12 and the README's "Running as
// a service" section.
//
//	savatd -addr localhost:8080 -state-dir /var/lib/savatd
//
// The API is mounted under /v1/campaigns; the observability surface
// (/metrics, /progress, /debug/vars) is mounted alongside it.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8080", "listen address (host:port; port 0 picks one)")
		stateDir    = flag.String("state-dir", "", "persistent state root: result cache and checkpoints (empty = in-memory only)")
		maxActive   = flag.Int("max-active", 2, "campaigns running concurrently")
		parallelism = flag.Int("parallelism", 0, "workers per campaign (0 = GOMAXPROCS)")
		cacheCap    = flag.Int("cache-capacity", 0, "in-memory result cache entries (0 = default)")
	)
	flag.Parse()
	if err := run(*addr, service.Options{
		StateDir:      *stateDir,
		MaxActive:     *maxActive,
		Parallelism:   *parallelism,
		CacheCapacity: *cacheCap,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "savatd:", err)
		os.Exit(1)
	}
}

func run(addr string, opts service.Options) error {
	srv, err := service.New(opts)
	if err != nil {
		return err
	}

	// Metrics on: the daemon serves /metrics itself, and enabling the
	// registry populates the health latency quantiles in every progress
	// event the API streams.
	obs.Default.SetEnabled(true)

	mux := http.NewServeMux()
	mux.Handle("/v1/", srv.Handler())
	mux.Handle("/", obs.Handler(obs.Default, func() any { return srv.List() }))

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}

	// The daemon-smoke harness (and humans with -addr :0) parse this
	// line for the bound address; keep its shape stable.
	fmt.Printf("savatd: listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		fmt.Printf("savatd: %v, shutting down\n", sig)
	case err := <-errc:
		srv.Close()
		return err
	}

	// Graceful shutdown: cancel and checkpoint the running campaigns
	// (which also ends any open event streams), then drain HTTP.
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	return nil
}
