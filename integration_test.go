// Cross-module integration tests: the full pipeline from assembly source
// through the cycle-level machine, EM model, and spectrum analyzer to
// SAVAT values, exercised the way the examples and cmd tools use it.
package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/conform"
	"repro/internal/cpu"
	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/paperdata"
	"repro/internal/savat"
	"repro/internal/stats"
)

// The quickstart flow: a single ADD/LDM measurement on the default setup
// lands in the paper's Figure 9 neighbourhood.
func TestIntegrationQuickstart(t *testing.T) {
	mc := machine.Core2Duo()
	cfg := savat.DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	m, err := savat.NewMeasurer(mc, cfg).Measure(savat.ADD, savat.LDM, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.ZJ() < 2.5 || m.ZJ() > 7 {
		t.Errorf("ADD/LDM = %.2f zJ, paper Figure 9 says 4.2", m.ZJ())
	}
}

// Campaign results must not depend on scheduling: running the same
// campaign with different parallelism gives identical matrices.
func TestIntegrationCampaignSchedulingIndependence(t *testing.T) {
	mc := machine.Core2Duo()
	cfg := savat.FastConfig()
	opts := savat.CampaignOptions{
		Events:  []savat.Event{savat.ADD, savat.LDM, savat.DIV},
		Repeats: 2,
		Seed:    3,
	}
	opts.Parallelism = 1
	seq, err := savat.RunCampaign(mc, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 4
	par, err := savat.RunCampaign(mc, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Mean.Vals {
		for j := range seq.Mean.Vals[i] {
			if seq.Mean.Vals[i][j] != par.Mean.Vals[i][j] {
				t.Fatalf("cell (%d,%d) differs across parallelism: %v vs %v",
					i, j, seq.Mean.Vals[i][j], par.Mean.Vals[i][j])
			}
		}
	}
}

// A reduced matrix (the loud representatives of each paper group) must
// reproduce the headline orderings of Figure 9 at full fidelity.
func TestIntegrationFigure9Orderings(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity orderings take ~10 s")
	}
	mc := machine.Core2Duo()
	cfg := savat.DefaultConfig()
	events := []savat.Event{savat.LDM, savat.STL2, savat.LDL2, savat.ADD, savat.DIV}
	res, err := savat.RunCampaign(mc, cfg, savat.CampaignOptions{
		Events: events, Repeats: 3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Mean
	checks := []struct {
		name   string
		holds  bool
		detail [2]float64
	}{
		{"ADD/LDM ≫ ADD/ADD", m.MustAt(savat.ADD, savat.LDM) > 3*m.MustAt(savat.ADD, savat.ADD),
			[2]float64{m.MustAt(savat.ADD, savat.LDM), m.MustAt(savat.ADD, savat.ADD)}},
		{"ADD/LDL2 ≈ ADD/LDM (10 cm headline)", m.MustAt(savat.ADD, savat.LDL2) > 0.5*m.MustAt(savat.ADD, savat.LDM),
			[2]float64{m.MustAt(savat.ADD, savat.LDL2), m.MustAt(savat.ADD, savat.LDM)}},
		{"LDM/LDL2 > ADD/LDM (fields differ)", m.MustAt(savat.LDM, savat.LDL2) > m.MustAt(savat.ADD, savat.LDM),
			[2]float64{m.MustAt(savat.LDM, savat.LDL2), m.MustAt(savat.ADD, savat.LDM)}},
		{"STL2 > LDL2 against ADD (write-backs)", m.MustAt(savat.ADD, savat.STL2) > m.MustAt(savat.ADD, savat.LDL2),
			[2]float64{m.MustAt(savat.ADD, savat.STL2), m.MustAt(savat.ADD, savat.LDL2)}},
		{"ADD/DIV > ADD/ADD (divider visible)", m.MustAt(savat.ADD, savat.DIV) > 1.3*m.MustAt(savat.ADD, savat.ADD),
			[2]float64{m.MustAt(savat.ADD, savat.DIV), m.MustAt(savat.ADD, savat.ADD)}},
	}
	for _, c := range checks {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if !c.holds {
				t.Errorf("violated: %.3g vs %.3g zJ", c.detail[0]*1e21, c.detail[1]*1e21)
			}
		})
	}
	t.Run("repeatability", func(t *testing.T) {
		if r := res.MeanRelStdDev(); r > 0.20 {
			t.Errorf("σ/mean = %.3f, paper reports ≈0.05", r)
		}
	})
}

// The distance story end to end: measured 10/50 cm ratios follow the
// published Figure 9 → Figure 17 transition for L2 vs off-chip.
func TestIntegrationDistanceTransition(t *testing.T) {
	mc := machine.Core2Duo()
	get := func(d float64, a, b savat.Event) float64 {
		cfg := savat.FastConfig()
		cfg.Distance = d
		rng := rand.New(rand.NewSource(2))
		m, err := savat.NewMeasurer(mc, cfg).Measure(a, b, rng)
		if err != nil {
			t.Fatal(err)
		}
		return m.SAVAT
	}
	near := get(0.10, savat.ADD, savat.LDL2) / get(0.10, savat.ADD, savat.LDM)
	far := get(0.50, savat.ADD, savat.LDL2) / get(0.50, savat.ADD, savat.LDM)
	if near < 0.6 {
		t.Errorf("at 10 cm L2 should rival off-chip: ratio %.2f", near)
	}
	if far > 0.8*near {
		t.Errorf("at 50 cm L2 should collapse relative to off-chip: near %.2f far %.2f", near, far)
	}
}

// Clustering a measured (not published) matrix recovers the paper groups —
// the pipeline and the analysis agree end to end.
func TestIntegrationMeasuredMatrixClusters(t *testing.T) {
	if testing.Short() {
		t.Skip("full 11×11 fast-path campaign takes ~1.5 s")
	}
	mc := machine.Core2Duo()
	cfg := savat.FastConfig()
	res, err := savat.RunCampaign(mc, cfg, savat.CampaignOptions{Repeats: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Run("invariants", func(t *testing.T) {
		// The measured matrix must satisfy the conformance property suite
		// before any clustering of it is meaningful.
		if rep := conform.VerifyMatrix("measured", res.Mean, conform.DefaultMatrixTolerances()); !rep.Ok() {
			t.Error(rep.String())
		}
	})
	d, err := cluster.Cluster(res.Mean)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := d.CutK(4)
	if err != nil {
		t.Fatal(err)
	}
	find := func(e savat.Event) int {
		for gi, g := range groups {
			for _, x := range g {
				if x == e {
					return gi
				}
			}
		}
		return -1
	}
	t.Run("paper groups", func(t *testing.T) {
		if find(savat.LDM) != find(savat.STM) {
			t.Error("LDM and STM should share a group")
		}
		if find(savat.LDL2) != find(savat.STL2) {
			t.Error("LDL2 and STL2 should share a group")
		}
		if find(savat.ADD) != find(savat.MUL) || find(savat.ADD) != find(savat.LDL1) {
			t.Error("arithmetic and L1 hits should share a group")
		}
		if find(savat.LDM) == find(savat.ADD) || find(savat.LDL2) == find(savat.ADD) {
			t.Error("off-chip and L2 must separate from arithmetic")
		}
	})
	t.Run("spearman vs published", func(t *testing.T) {
		// Shape agreement with the published matrix on the same protocol.
		paper := paperdata.Experiments()[0].Matrix()
		rho, err := stats.SpearmanRank(res.Mean.Flat(), paper.Flat())
		if err != nil {
			t.Fatal(err)
		}
		if rho < 0.85 {
			t.Errorf("Spearman vs published Figure 9 = %.3f, want ≥ 0.85", rho)
		}
	})
}

// Assembly source → assembler → machine: the same program the tools run.
func TestIntegrationAsmToMachine(t *testing.T) {
	src := `
		.equ n, 20
		movi r1, n
		movi r2, 0
		movi r4, 0x1000
	loop:
		add  r2, r2, r1      ; r2 += r1
		st   [r4+0], r2
		ld   r3, [r4+0]
		subi r1, r1, 1
		bne  r1, r0, loop
		halt
	`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	mc := machine.Pentium3M()
	hier, err := memhier.New(mc.Mem)
	if err != nil {
		t.Fatal(err)
	}
	core, err := cpu.New(mc.CPU, prog.Instructions, hier)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if !core.Halted() {
		t.Fatal("program did not halt")
	}
	// Σ 1..20 = 210.
	if got := core.Reg(3); got != 210 {
		t.Errorf("r3 = %d, want 210", got)
	}
	l1, _, mem := hier.ServiceCounts()
	if l1 == 0 || mem == 0 {
		t.Errorf("expected both L1 hits and one cold miss: l1=%d mem=%d", l1, mem)
	}
}

// The attack demo remains correct across all three machines (integration
// of asm, cpu, machine, emsim, and attack).
func TestIntegrationAttackAcrossMachines(t *testing.T) {
	for _, mc := range machine.CaseStudyMachines() {
		tr, err := attack.RunModExp(mc, 3, 0x5EC12E7, 12289)
		if err != nil {
			t.Fatalf("%s: %v", mc.Name, err)
		}
		rng := rand.New(rand.NewSource(4))
		energies, err := attack.WindowEnergies(tr, mc, 0.10, 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		_, acc, err := attack.RecoverExponent(tr, energies)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 1 {
			t.Errorf("%s: noiseless recovery accuracy %.2f", mc.Name, acc)
		}
	}
}
